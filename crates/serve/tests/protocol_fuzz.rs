//! Protocol fuzz suite: a hostile or broken peer can never panic the
//! server, wedge a session, or take the process down.
//!
//! Every scenario drives a **live** loopback server with raw bytes
//! (no `ServeClient` niceties): corrupted frames, mid-batch
//! disconnects, oversized lines, half-open handshakes, and
//! contract-violating batches. The invariants, checked after every
//! hostile exchange:
//!
//! 1. the server replies with a typed `ERR <code> …` line (or the
//!    peer vanished first) and closes the connection — it never hangs
//!    a compliant reader (all reads run under a timeout);
//! 2. the session table drains back to zero;
//! 3. a fresh, well-formed session on the same server still works —
//!    the process survived.

use acmr_core::Request;
use acmr_graph::{EdgeId, EdgeSet};
use acmr_harness::default_registry;
use acmr_serve::protocol::{
    write_frame, FRAME_BATCH, FRAME_END, FRAME_REQ, GREETING, MAX_FRAME_BYTES,
};
use acmr_serve::{
    is_transport_error, serve, ProtoVersion, ServeClient, ServeConfig, ServerHandle, WorkerPool,
    CLUSTER_ERROR_CODE,
};
use acmr_workloads::binfmt::encode_record_into;
use acmr_workloads::repeated_hot_edge;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const READ_TIMEOUT: Duration = Duration::from_secs(10);

fn start_server() -> ServerHandle {
    serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server")
}

/// Write raw bytes to a fresh connection (ignoring write errors — the
/// server may close mid-write, which is part of the contract under
/// test), then drain every reply line until the server closes. Panics
/// on timeout: a wedged session is exactly the bug this suite exists
/// to catch.
fn raw_exchange(handle: &ServerHandle, payload: &[u8]) -> Vec<String> {
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut write_half = stream.try_clone().expect("clone");
    let payload = payload.to_vec();
    // Write on a helper thread: an oversized payload can outlive the
    // server's reading interest, making write() block or fail.
    let writer = std::thread::spawn(move || {
        for chunk in payload.chunks(64 * 1024) {
            if write_half.write_all(chunk).is_err() {
                break;
            }
        }
        let _ = write_half.flush();
        // Half-close: tells the server this peer is done sending, so
        // its drain-before-close sees EOF immediately.
        let _ = write_half.shutdown(std::net::Shutdown::Write);
    });
    let mut replies = Vec::new();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // server closed: done
            Ok(_) => replies.push(line.trim().to_string()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("server wedged: no reply or close within {READ_TIMEOUT:?}")
            }
            Err(_) => break, // reset by peer: also a close
        }
    }
    let _ = writer.join();
    replies
}

/// The liveness probe: a complete well-formed session must still work.
fn assert_server_alive(handle: &ServerHandle) {
    let inst = repeated_hot_edge(4, 3, 12);
    let mut client =
        ServeClient::connect(handle.local_addr(), "greedy", None, &inst.capacities).unwrap();
    for r in &inst.requests {
        client.push(r).unwrap();
    }
    let report = client.finish().unwrap();
    assert_eq!(report.requests, inst.requests.len());
}

fn wait_for_drained(handle: &ServerHandle) {
    for _ in 0..500 {
        if handle.manager().active() == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "session table did not drain: {:?}",
        handle.manager().snapshot()
    );
}

/// A canonical valid session script the mutation tests corrupt.
const VALID_SCRIPT: &str = "OPEN greedy\nedges 2\ncaps 2 1\n1 0 1\nBATCH 2\n2.5 1\n1 0\nEND\n";

#[test]
fn valid_script_round_trips() {
    let handle = start_server();
    let replies = raw_exchange(&handle, VALID_SCRIPT.as_bytes());
    assert_eq!(replies[0], GREETING);
    assert!(replies[1].starts_with("OK "), "{replies:?}");
    assert_eq!(
        replies.iter().filter(|l| l.starts_with("EVENT ")).count(),
        3,
        "{replies:?}"
    );
    assert!(
        replies.last().unwrap().starts_with("REPORT "),
        "{replies:?}"
    );
    wait_for_drained(&handle);
    handle.shutdown();
}

#[test]
fn hostile_scenarios_yield_typed_errors_and_the_server_survives() {
    let handle = start_server();
    // (payload, the ERR code the reply must carry; None = any close
    // without REPORT is acceptable, e.g. a silent hangup).
    let scenarios: &[(&[u8], Option<&str>)] = &[
        // Garbage instead of OPEN.
        (b"HELLO there\n", Some("ERR parse")),
        // Unknown algorithm.
        (
            b"OPEN nope\nedges 1\ncaps 1\nEND\n",
            Some("ERR unknown-algorithm"),
        ),
        // Bad spec parameter.
        (
            b"OPEN greedy?bogus=1\nedges 1\ncaps 1\nEND\n",
            Some("ERR bad-param"),
        ),
        // Malformed OPEN extras.
        (b"OPEN greedy extra\nedges 1\ncaps 1\n", Some("ERR parse")),
        // Header drift: caps count mismatch, zero capacity.
        (b"OPEN greedy\nedges 2\ncaps 1\nEND\n", Some("ERR parse")),
        (b"OPEN greedy\nedges 1\ncaps 0\nEND\n", Some("ERR parse")),
        // Corrupt request frames after a good handshake.
        (
            b"OPEN greedy\nedges 2\ncaps 2 1\nwat 0\n",
            Some("ERR parse"),
        ),
        (b"OPEN greedy\nedges 2\ncaps 2 1\n-3 0\n", Some("ERR parse")),
        (b"OPEN greedy\nedges 2\ncaps 2 1\n1 7\n", Some("ERR parse")),
        // Malformed and oversized BATCH headers.
        (
            b"OPEN greedy\nedges 2\ncaps 2 1\nBATCH many\n",
            Some("ERR parse"),
        ),
        (
            b"OPEN greedy\nedges 2\ncaps 2 1\nBATCH 999999999\n",
            Some("ERR parse"),
        ),
        // Corrupt line inside a batch.
        (
            b"OPEN greedy\nedges 2\ncaps 2 1\nBATCH 2\n1 0\nnan 1\nEND\n",
            Some("ERR parse"),
        ),
        // Mid-batch disconnect: 2 of 5 promised requests, then EOF.
        (
            b"OPEN greedy\nedges 2\ncaps 2 1\nBATCH 5\n1 0\n1 1\n",
            Some("ERR parse"),
        ),
        // Handshake abandoned halfway.
        (b"OPEN greedy\nedges 2\n", Some("ERR parse")),
        // Nothing at all.
        (b"", None),
        // Invalid UTF-8 in a frame.
        (
            b"OPEN greedy\nedges 2\ncaps 2 1\n\xff\xfe\n",
            Some("ERR parse"),
        ),
    ];
    for (payload, expected) in scenarios {
        let replies = raw_exchange(&handle, payload);
        assert_eq!(replies.first().map(String::as_str), Some(GREETING));
        assert!(
            !replies.iter().any(|l| l.starts_with("REPORT ")),
            "hostile payload {payload:?} got a REPORT: {replies:?}"
        );
        if let Some(prefix) = expected {
            let last = replies.last().expect("an ERR reply");
            assert!(
                last.starts_with(prefix),
                "payload {:?}: expected {prefix:?}, got {replies:?}",
                String::from_utf8_lossy(payload)
            );
            // Every ERR points the operator at the protocol spec.
            assert!(last.contains("docs/SERVING.md"), "{last}");
        }
        wait_for_drained(&handle);
    }
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn oversized_line_is_a_typed_error_not_a_memory_blowup() {
    let handle = start_server();
    // A newline-free frame just past the cap: the server must cut it
    // off with ERR parse instead of buffering without limit.
    let mut payload = Vec::with_capacity(MAX_FRAME_BYTES + 128 * 1024 + 64);
    payload.extend_from_slice(b"OPEN greedy\nedges 2\ncaps 2 1\n");
    payload.resize(payload.len() + MAX_FRAME_BYTES + 128 * 1024, b'7');
    let replies = raw_exchange(&handle, &payload);
    let err = replies
        .iter()
        .find(|l| l.starts_with("ERR "))
        .expect("typed reply to an oversized line");
    assert!(err.starts_with("ERR parse"), "{err}");
    assert!(err.contains("exceeds"), "{err}");
    wait_for_drained(&handle);
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn out_of_range_batch_is_refused_with_typed_error() {
    // Registry algorithms never violate their contract, so the
    // `violation` wire code is pinned at the unit level (protocol
    // error-table tests); here we pin the session-refusal path: an
    // out-of-range edge inside a batch is range-checked against the
    // handshake universe by the frame parser and refused before the
    // algorithm sees anything.
    let handle = start_server();
    let replies = raw_exchange(
        &handle,
        b"OPEN greedy\nedges 1\ncaps 1\nBATCH 2\n1 0\n1 3\n",
    );
    assert!(
        replies.iter().any(|l| l.starts_with("ERR parse")),
        "{replies:?}"
    );
    wait_for_drained(&handle);
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn shutdown_unblocks_pre_handshake_connections() {
    // A peer that connects and never sends a byte: its worker thread
    // is parked waiting for OPEN and owns no session-table entry.
    // Graceful shutdown must still close its socket and join the
    // thread instead of hanging forever.
    let handle = start_server();
    let idle = TcpStream::connect(handle.local_addr()).expect("connect");
    idle.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    // The shutdown itself is the assertion: run it on a watchdogged
    // thread so a regression fails the test instead of wedging it.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("shutdown wedged on a pre-handshake connection");
    // The idle peer observes its connection closing.
    let mut reader = BufReader::new(idle);
    let mut line = String::new();
    let _ = reader.read_line(&mut line); // greeting
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap_or(0), 0, "{line:?}");
}

#[test]
fn idle_timeout_disconnects_a_silent_peer_with_a_typed_error() {
    // With an idle timeout configured, a peer that connects and goes
    // silent is cut loose with `ERR io` instead of pinning its
    // connection slot forever.
    let handle = serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            idle_timeout: Some(Duration::from_millis(200)),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server");
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("greeting");
    assert_eq!(line.trim(), GREETING);
    // Stay silent: the server must end the connection on its own.
    line.clear();
    let n = reader.read_line(&mut line).unwrap_or(0);
    if n > 0 {
        assert!(line.starts_with("ERR io"), "{line:?}");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap_or(0), 0, "{line:?}");
    }
    wait_for_drained(&handle);
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn slow_loris_peers_neither_starve_others_nor_dodge_the_idle_timeout() {
    // The slow-loris shape: many connections each dripping valid
    // bytes one per write, then going silent mid-handshake. Two
    // reactor properties under test at once: (1) while the drips are
    // in flight, *other* connections run complete sessions promptly —
    // a dripping peer occupies a poller slot, not a thread; (2) once
    // a dripper goes silent, the idle timeout still fires and cuts it
    // loose with the typed `ERR io`, even with the whole crowd
    // connected.
    const LORIS: usize = 6;
    let handle = serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            idle_timeout: Some(Duration::from_millis(400)),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = handle.local_addr();
    let drippers: Vec<_> = (0..LORIS)
        .map(|_| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
                let mut write_half = stream.try_clone().expect("clone");
                // One byte at a time, well inside the idle timeout, so
                // the server sees a live-but-glacial peer; stop
                // mid-handshake and go silent.
                for b in &VALID_SCRIPT.as_bytes()[..10] {
                    if write_half.write_all(std::slice::from_ref(b)).is_err() {
                        break;
                    }
                    let _ = write_half.flush();
                    std::thread::sleep(Duration::from_millis(50));
                }
                // Drain replies until the server ends the connection.
                let mut reader = BufReader::new(stream);
                let mut replies = Vec::new();
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) => break,
                        Ok(_) => replies.push(line.trim().to_string()),
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            panic!("slow-loris connection wedged: no close within {READ_TIMEOUT:?}")
                        }
                        Err(_) => break,
                    }
                }
                replies
            })
        })
        .collect();
    // While every dripper is still mid-drip: full sessions on the
    // same server must complete promptly (each run is a handshake, 12
    // arrivals, and a report — far quicker than one drip interval if
    // the reactor is actually multiplexing).
    for _ in 0..3 {
        assert_server_alive(&handle);
    }
    // Every dripper is eventually cut loose with the typed idle reply
    // (or, at the very least, a close — the timeout may race the
    // reply onto a socket the peer already abandoned).
    for dripper in drippers {
        let replies = dripper.join().expect("dripper panicked");
        assert_eq!(replies.first().map(String::as_str), Some(GREETING));
        if let Some(last) = replies.last() {
            if last != GREETING {
                assert!(last.starts_with("ERR io"), "{replies:?}");
            }
        }
    }
    wait_for_drained(&handle);
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn over_capacity_connections_get_a_readable_busy_reply() {
    let handle = serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server");
    // Occupy the only slot with a live session.
    let inst = repeated_hot_edge(4, 3, 12);
    let mut occupant =
        ServeClient::connect(handle.local_addr(), "greedy", None, &inst.capacities).unwrap();
    occupant.push(&inst.requests[0]).unwrap();
    // The second connection must receive the typed busy reply — not a
    // TCP reset that swallows it. The reactor's accept-queue policy
    // types it `busy` (transient, retry later), distinct from `io`.
    let replies = raw_exchange(&handle, b"OPEN greedy\nedges 1\ncaps 1\n");
    assert_eq!(replies.first().map(String::as_str), Some(GREETING));
    let last = replies.last().expect("busy reply");
    assert!(last.starts_with("ERR busy"), "{replies:?}");
    assert!(last.contains("capacity"), "{replies:?}");
    // Finishing the occupant frees the slot.
    occupant.finish().unwrap();
    wait_for_drained(&handle);
    assert_server_alive(&handle);
    handle.shutdown();
}

/// A hostile middlebox in front of a real server: it forwards the
/// session byte for byte, but severs its first `drop_conns`
/// connections — both directions, abruptly — after relaying
/// `cut_after_lines` server reply lines (0 = before even the
/// greeting, i.e. an arbitrary frame boundary including "none").
/// Connections after the first `drop_conns` are piped untouched, so a
/// retry against the same address can succeed. Runs until the test
/// process exits.
fn dropping_proxy(backend: SocketAddr, cut_after_lines: usize, drop_conns: usize) -> SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        let mut dropped = 0usize;
        for conn in listener.incoming() {
            let Ok(client) = conn else { break };
            let Ok(server) = TcpStream::connect(backend) else {
                break;
            };
            let cut = dropped < drop_conns;
            if cut {
                dropped += 1;
            }
            // Upstream pump (client → server) on its own thread; it
            // exits when either side closes.
            let mut up_read = client.try_clone().expect("clone client");
            let mut up_write = server.try_clone().expect("clone server");
            let upstream = std::thread::spawn(move || {
                let _ = std::io::copy(&mut up_read, &mut up_write);
                let _ = up_write.shutdown(std::net::Shutdown::Write);
            });
            // Downstream (server → client): relay reply lines, then —
            // on a marked connection — sever both sockets mid-protocol.
            let mut reader = BufReader::new(server.try_clone().expect("clone server"));
            let mut client_write = client.try_clone().expect("clone client");
            if cut {
                let mut line = String::new();
                for _ in 0..cut_after_lines {
                    line.clear();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    if client_write.write_all(line.as_bytes()).is_err() {
                        break;
                    }
                }
                let _ = client.shutdown(std::net::Shutdown::Both);
                let _ = server.shutdown(std::net::Shutdown::Both);
            } else {
                let _ = std::io::copy(&mut reader, &mut client_write);
                let _ = client.shutdown(std::net::Shutdown::Both);
            }
            let _ = upstream.join();
        }
    });
    addr
}

/// The whole-trace replay a retry must perform, as a pool job: the
/// hot-edge instance replayed through one worker address.
fn pool_job(
    pool: &WorkerPool,
    inst: &acmr_core::AdmissionInstance,
    batch: Option<usize>,
) -> Result<acmr_core::RunReport, acmr_core::AcmrError> {
    pool.run_job(0, "greedy", Some(0), batch, || {
        Ok((
            inst.capacities.clone(),
            inst.requests.iter().cloned().map(Ok),
        ))
    })
}

#[test]
fn client_reports_a_typed_error_when_the_server_drops_mid_session() {
    // A ServeClient facing a connection that dies at a frame boundary
    // must surface a typed transport error — never a panic, a hang,
    // or a fabricated event.
    let handle = start_server();
    let inst = repeated_hot_edge(4, 3, 12);
    // Drop after 2 reply lines (greeting + OK): the handshake
    // succeeds, the first push dies.
    let proxy = dropping_proxy(handle.local_addr(), 2, usize::MAX);
    let mut client =
        ServeClient::connect(proxy, "greedy", None, &inst.capacities).expect("handshake");
    let err = inst
        .requests
        .iter()
        .find_map(|r| client.push(r).err())
        .expect("a severed session must error");
    assert!(is_transport_error(&err), "{err}");
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn exhausted_retries_against_a_dropping_server_surface_one_cluster_error() {
    // Every connection through this proxy dies after the OK reply:
    // the pool's bounded retry must give up with the typed cluster
    // error, never hang or return a half-replayed report.
    let handle = start_server();
    let inst = repeated_hot_edge(4, 3, 12);
    let proxy = dropping_proxy(handle.local_addr(), 2, usize::MAX);
    // The line-counting proxy pins the v1 wire; the v2 twin of this
    // scenario lives in `severing_proxy`-based tests below.
    let pool = WorkerPool::connect(&[proxy.to_string()])
        .expect("adopt proxy")
        .proto(ProtoVersion::V1)
        .retries(2);
    let err = pool_job(&pool, &inst, None).expect_err("retries must exhaust");
    match &err {
        acmr_core::AcmrError::Remote { code, message } => {
            assert_eq!(code, CLUSTER_ERROR_CODE, "{message}");
            assert!(message.contains("3 attempt"), "{message}");
        }
        other => panic!("expected a cluster error, got {other:?}"),
    }
    assert_server_alive(&handle);
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reconnect/retry path: the server (here, a hostile
    /// middlebox in front of a real one) drops the connection at an
    /// **arbitrary reply-frame boundary** — before the greeting,
    /// mid-handshake, between events, before the final report. The
    /// `ServeClient` surfaces a typed transport error, and the
    /// `WorkerPool` retry replays the **whole trace** on a fresh
    /// session: the final report must be identical to an undisturbed
    /// run — `requests` included, so a half-replayed session can
    /// never masquerade as a result.
    #[test]
    fn worker_pool_replays_the_whole_trace_when_dropped_at_any_frame_boundary(
        cut_after in 0usize..16,
        batch in prop_oneof![Just(None), Just(Some(5))],
    ) {
        let handle = start_server();
        let inst = repeated_hot_edge(4, 3, 12);
        // The line-counting proxy pins the v1 wire on both pools; the
        // v2 twin (byte-boundary cuts) is its own proptest below.
        let direct_pool = WorkerPool::connect(&[handle.local_addr().to_string()])
            .unwrap()
            .proto(ProtoVersion::V1);
        let expected = pool_job(&direct_pool, &inst, batch).expect("direct replay");
        prop_assert_eq!(expected.requests, inst.requests.len());

        // First connection dies after `cut_after` reply lines; the
        // retry's fresh connection is piped cleanly.
        let proxy = dropping_proxy(handle.local_addr(), cut_after, 1);
        let pool = WorkerPool::connect(&[proxy.to_string()])
            .unwrap()
            .proto(ProtoVersion::V1)
            .retries(2);
        let report = pool_job(&pool, &inst, batch).expect("retried replay");
        prop_assert_eq!(&report, &expected, "retried report diverges");
        prop_assert_eq!(report.requests, inst.requests.len());

        assert_server_alive(&handle);
        handle.shutdown();
    }

    /// Corrupting any single byte of a valid session script: the
    /// server replies (ERR or a still-valid protocol run), never
    /// panics, never wedges, and stays alive for the next session.
    #[test]
    fn corrupting_any_byte_never_wedges_the_server(
        pos in 0usize..VALID_SCRIPT.len(),
        byte in 0u8..=255u8,
    ) {
        let handle = start_server();
        let mut payload = VALID_SCRIPT.as_bytes().to_vec();
        payload[pos] = byte;
        let replies = raw_exchange(&handle, &payload);
        prop_assert_eq!(replies.first().map(String::as_str), Some(GREETING));
        // Either the corruption was benign (a full protocol run) or
        // the server ended with a typed ERR; in both cases the
        // connection closed (raw_exchange returned) and the table
        // drains.
        let last = replies.last().map(String::as_str).unwrap_or("");
        prop_assert!(
            last.starts_with("REPORT ") || last.starts_with("ERR ") || last.starts_with("EVENT "),
            "unexpected final reply {:?}", replies
        );
        wait_for_drained(&handle);
        assert_server_alive(&handle);
        handle.shutdown();
    }

    /// Truncating the script at any byte (client vanishes mid-frame,
    /// mid-batch, mid-handshake): never wedges, never kills.
    #[test]
    fn truncation_anywhere_never_wedges_the_server(len in 0usize..VALID_SCRIPT.len()) {
        let handle = start_server();
        let replies = raw_exchange(&handle, &VALID_SCRIPT.as_bytes()[..len]);
        prop_assert_eq!(replies.first().map(String::as_str), Some(GREETING));
        wait_for_drained(&handle);
        assert_server_alive(&handle);
        handle.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Protocol v2: the same hostile-peer invariants over the binary frame
// dialect. Replies past the line handshake are binary, so these
// helpers drain raw bytes instead of lines.
// ---------------------------------------------------------------------------

/// Raw-byte twin of [`raw_exchange`]: write `payload`, half-close, and
/// drain every reply **byte** until the server closes. Panics on
/// timeout — a wedged v2 session is exactly the bug under test.
fn raw_exchange_bytes(handle: &ServerHandle, payload: &[u8]) -> Vec<u8> {
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    let mut write_half = stream.try_clone().expect("clone");
    let payload = payload.to_vec();
    let writer = std::thread::spawn(move || {
        for chunk in payload.chunks(64 * 1024) {
            if write_half.write_all(chunk).is_err() {
                break;
            }
        }
        let _ = write_half.flush();
        let _ = write_half.shutdown(std::net::Shutdown::Write);
    });
    let mut replies = Vec::new();
    let mut reader = BufReader::new(stream);
    let mut chunk = [0u8; 4096];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => replies.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("v2 server wedged: no reply or close within {READ_TIMEOUT:?}")
            }
            Err(_) => break,
        }
    }
    let _ = writer.join();
    replies
}

/// A canonical valid **v2** session byte script (line handshake with
/// `proto=v2`, then binary frames: one REQ, one 2-record BATCH, END),
/// plus the offset of every client-side frame boundary — including
/// "handshake only" — for the truncation sweep.
fn v2_script() -> (Vec<u8>, Vec<usize>) {
    let req = |ids: &[u32], cost: f64| {
        Request::new(EdgeSet::new(ids.iter().map(|&i| EdgeId(i)).collect()), cost)
    };
    let mut script = Vec::new();
    script.extend_from_slice(b"OPEN greedy proto=v2\nedges 2\ncaps 2 1\n");
    let mut boundaries = vec![script.len()];
    // REQ frame: one record.
    let mut payload = Vec::new();
    encode_record_into(&mut payload, &req(&[0, 1], 1.0), 2).unwrap();
    write_frame(&mut script, FRAME_REQ, &payload).unwrap();
    boundaries.push(script.len());
    // BATCH frame: u32le count, then records back to back.
    payload.clear();
    payload.extend_from_slice(&2u32.to_le_bytes());
    encode_record_into(&mut payload, &req(&[1], 2.5), 2).unwrap();
    encode_record_into(&mut payload, &req(&[0], 1.0), 2).unwrap();
    write_frame(&mut script, FRAME_BATCH, &payload).unwrap();
    boundaries.push(script.len());
    write_frame(&mut script, FRAME_END, &[]).unwrap();
    boundaries.push(script.len());
    (script, boundaries)
}

#[test]
fn valid_v2_script_round_trips() {
    let handle = start_server();
    let (script, _) = v2_script();
    let reply = raw_exchange_bytes(&handle, &script);
    // Line bootstrap: greeting, then an OK acknowledging the upgrade.
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with(GREETING), "{text:?}");
    assert!(text.contains(" proto=v2\n"), "{text:?}");
    // The binary tail carries a REPORT frame (0x83) — spot-check the
    // JSON payload it wraps rather than re-implementing frame parsing.
    assert!(text.contains("\"requests\":3"), "{text:?}");
    wait_for_drained(&handle);
    handle.shutdown();
}

#[test]
fn v2_truncation_at_every_frame_boundary_never_wedges_the_server() {
    // The client vanishes exactly between frames: after the handshake,
    // after the REQ, after the BATCH, after END. The server must
    // answer every prefix (typed ERR for a mid-session hangup, a full
    // run for the complete script), drain, and survive.
    let handle = start_server();
    let (script, boundaries) = v2_script();
    for &cut in &boundaries {
        let reply = raw_exchange_bytes(&handle, &script[..cut]);
        let text = String::from_utf8_lossy(&reply);
        assert!(text.starts_with(GREETING), "cut at {cut}: {text:?}");
        wait_for_drained(&handle);
    }
    assert_server_alive(&handle);
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Corrupting any single byte of a valid v2 session — handshake
    /// text, frame headers, length prefixes, record payloads — never
    /// wedges or kills the server. (A corrupted length prefix that
    /// promises more bytes than the peer sends must be cut off by the
    /// peer's EOF, not waited on forever.)
    #[test]
    fn v2_corrupting_any_byte_never_wedges_the_server(
        pos in 0usize..103, // v2_script length; pinned below
        byte in 0u8..=255u8,
    ) {
        let handle = start_server();
        let (mut script, _) = v2_script();
        prop_assert_eq!(script.len(), 103, "v2_script changed: update the pos range");
        script[pos] ^= byte | 1; // guarantee the byte actually changes
        let reply = raw_exchange_bytes(&handle, &script);
        let text = String::from_utf8_lossy(&reply);
        prop_assert!(text.starts_with(GREETING), "{:?}", text);
        wait_for_drained(&handle);
        assert_server_alive(&handle);
        handle.shutdown();
    }

    /// Truncating the v2 script at **any byte** (not just frame
    /// boundaries): mid-handshake, mid-header, mid-record. Never
    /// wedges, never kills.
    #[test]
    fn v2_truncation_anywhere_never_wedges_the_server(len in 0usize..103) {
        let handle = start_server();
        let (script, _) = v2_script();
        prop_assert_eq!(script.len(), 103, "v2_script changed: update the len range");
        let reply = raw_exchange_bytes(&handle, &script[..len]);
        let text = String::from_utf8_lossy(&reply);
        prop_assert!(text.starts_with(GREETING), "{:?}", text);
        wait_for_drained(&handle);
        assert_server_alive(&handle);
        handle.shutdown();
    }
}

/// Byte-counting twin of [`dropping_proxy`] for the v2 wire: severs
/// its first `drop_conns` connections after relaying `cut_after_bytes`
/// server reply **bytes** — which lands before the greeting, inside
/// the OK line, or anywhere inside a binary frame.
fn severing_proxy(backend: SocketAddr, cut_after_bytes: usize, drop_conns: usize) -> SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        let mut dropped = 0usize;
        for conn in listener.incoming() {
            let Ok(client) = conn else { break };
            let Ok(server) = TcpStream::connect(backend) else {
                break;
            };
            let cut = dropped < drop_conns;
            if cut {
                dropped += 1;
            }
            let mut up_read = client.try_clone().expect("clone client");
            let mut up_write = server.try_clone().expect("clone server");
            let upstream = std::thread::spawn(move || {
                let _ = std::io::copy(&mut up_read, &mut up_write);
                let _ = up_write.shutdown(std::net::Shutdown::Write);
            });
            let mut reader = server.try_clone().expect("clone server");
            let mut client_write = client.try_clone().expect("clone client");
            if cut {
                let mut left = cut_after_bytes;
                let mut chunk = [0u8; 256];
                while left > 0 {
                    let want = left.min(chunk.len());
                    let n = reader.read(&mut chunk[..want]).unwrap_or(0);
                    if n == 0 || client_write.write_all(&chunk[..n]).is_err() {
                        break;
                    }
                    left -= n;
                }
                let _ = client.shutdown(std::net::Shutdown::Both);
                let _ = server.shutdown(std::net::Shutdown::Both);
            } else {
                let _ = std::io::copy(&mut reader, &mut client_write);
                let _ = client.shutdown(std::net::Shutdown::Both);
            }
            let _ = upstream.join();
        }
    });
    addr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The v2 whole-trace-retry twin of the v1 proptest above: the
    /// first connection dies after an **arbitrary number of reply
    /// bytes** — before the greeting, mid-OK, inside a SUMMARY or
    /// REPORT frame. The pool's retry replays the whole trace over a
    /// fresh v2 session and the report is byte-identical to an
    /// undisturbed v2 run.
    #[test]
    fn v2_pool_replays_the_whole_trace_when_severed_at_any_reply_byte(
        cut_after in 0usize..200,
        batch in prop_oneof![Just(None), Just(Some(5))],
    ) {
        let handle = start_server();
        let inst = repeated_hot_edge(4, 3, 12);
        let direct_pool = WorkerPool::connect(&[handle.local_addr().to_string()]).unwrap();
        let expected = pool_job(&direct_pool, &inst, batch).expect("direct v2 replay");
        prop_assert_eq!(expected.requests, inst.requests.len());

        let proxy = severing_proxy(handle.local_addr(), cut_after, 1);
        let pool = WorkerPool::connect(&[proxy.to_string()]).unwrap().retries(2);
        let report = pool_job(&pool, &inst, batch).expect("retried v2 replay");
        prop_assert_eq!(&report, &expected, "retried v2 report diverges");

        assert_server_alive(&handle);
        handle.shutdown();
    }
}

#[test]
fn negotiation_matrix_always_gets_a_typed_answer() {
    // All four client×server pairings resolve with a typed answer —
    // a working session or a typed ERR — never a hang or a silent
    // downgrade.
    let caps = [2u32, 1];
    let v2_server = start_server();
    let v1_server = serve(
        default_registry(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_proto: ProtoVersion::V1,
            ..ServeConfig::default()
        },
    )
    .expect("bind v1-capped server");

    // v1 client × v1 server and v1 client × v2 server: plain sessions.
    for srv in [&v1_server, &v2_server] {
        let client = ServeClient::connect(srv.local_addr(), "greedy", None, &caps).unwrap();
        assert_eq!(client.proto(), ProtoVersion::V1);
        let report = client.finish().unwrap();
        assert_eq!(report.requests, 0);
    }

    // v2 client × v2 server: the upgrade is acknowledged.
    let client = ServeClient::connect_v2(v2_server.local_addr(), "greedy", None, &caps, false)
        .expect("v2 negotiation");
    assert_eq!(client.proto(), ProtoVersion::V2);
    let report = client.finish().unwrap();
    assert_eq!(report.requests, 0);

    // v2 client × v1-capped server: the negotiation token is answered
    // with the server's typed parse error — no hang, and no silent
    // fallback to v1 (the operator must choose `--proto v1`).
    let err = match ServeClient::connect_v2(v1_server.local_addr(), "greedy", None, &caps, false) {
        Err(e) => e,
        Ok(_) => panic!("a v1-capped server must refuse proto=v2"),
    };
    match &err {
        acmr_core::AcmrError::Remote { code, message } => {
            assert_eq!(code, "parse", "{message}");
            assert!(message.contains("proto=v2"), "{message}");
        }
        other => panic!("expected a typed remote error, got {other:?}"),
    }

    wait_for_drained(&v1_server);
    wait_for_drained(&v2_server);
    v1_server.shutdown();
    v2_server.shutdown();
}
