//! Random path workloads on standard topologies.
//!
//! The knob that matters for every experiment is the **overload
//! factor** `ρ`: the generator draws enough random-path requests that
//! the expected per-edge demand is about `ρ·c_e`. At `ρ ≤ 1` OPT
//! rejects (almost) nothing — the paper's motivating regime where an
//! algorithm must not reject either; at `ρ > 1` rejections are forced
//! and the competitive machinery engages.

use crate::cost::CostModel;
use acmr_core::{AdmissionInstance, Request};
use acmr_graph::{generators, routing, CapGraph, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Topology families for admission workloads.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// Directed line with `m` edges (requests = intervals).
    Line {
        /// Number of edges.
        m: u32,
    },
    /// Balanced binary tree with the given number of levels
    /// (bidirectional edges).
    Tree {
        /// Tree levels (≥ 2).
        levels: u32,
    },
    /// `rows × cols` bidirectional grid.
    Grid {
        /// Grid rows.
        rows: u32,
        /// Grid columns.
        cols: u32,
    },
    /// Erdős–Rényi `G(n, p)` plus a Hamiltonian backbone.
    Gnp {
        /// Node count.
        n: u32,
        /// Edge probability.
        p: f64,
    },
}

impl Topology {
    /// Materialize the graph with uniform capacity `cap`.
    pub fn build<R: Rng>(&self, cap: u32, rng: &mut R) -> CapGraph {
        match *self {
            Topology::Line { m } => generators::line_with_edges(m, cap),
            Topology::Tree { levels } => generators::balanced_binary_tree(levels, cap),
            Topology::Grid { rows, cols } => generators::grid(rows, cols, cap),
            Topology::Gnp { n, p } => generators::erdos_renyi(n, p, cap, rng),
        }
    }
}

/// Specification of a random path workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PathWorkloadSpec {
    /// Topology family.
    pub topology: Topology,
    /// Uniform edge capacity.
    pub capacity: u32,
    /// Target overload factor `ρ` (expected demand / capacity).
    pub overload: f64,
    /// Cost distribution.
    pub costs: CostModel,
    /// Maximum hops per request path.
    pub max_hops: u32,
}

impl PathWorkloadSpec {
    /// A compact default: line topology, unit costs, 2× overload.
    pub fn line_default(m: u32, capacity: u32) -> Self {
        PathWorkloadSpec {
            topology: Topology::Line { m },
            capacity,
            overload: 2.0,
            costs: CostModel::Unit,
            max_hops: 8,
        }
    }
}

/// Generate `(graph, instance)` for a spec.
///
/// Requests are sampled as random simple paths (BFS-routed node pairs
/// on the line — i.e. intervals — and self-avoiding walks elsewhere)
/// until total edge demand reaches `ρ · Σ_e c_e`.
pub fn random_path_workload<R: Rng>(
    spec: &PathWorkloadSpec,
    rng: &mut R,
) -> (CapGraph, AdmissionInstance) {
    let g = spec.topology.build(spec.capacity, rng);
    let mut inst = AdmissionInstance::from_graph(&g);
    let capacity_mass: f64 = g.capacities().iter().map(|&c| c as f64).sum();
    let target = spec.overload * capacity_mass;
    let mut demand = 0.0f64;
    let mut failures = 0u32;
    while demand < target && failures < 10_000 {
        let path = match spec.topology {
            Topology::Line { .. } => {
                let (a, b) = routing::random_node_pair(&g, rng);
                let (src, dst) = if a < b { (a, b) } else { (b, a) };
                // Clip interval length to max_hops.
                let dst = NodeId(dst.0.min(src.0 + spec.max_hops));
                routing::bfs_path(&g, src, dst)
            }
            _ => {
                let src = NodeId(rng.gen_range(0..g.num_nodes() as u32));
                routing::random_simple_path(&g, src, spec.max_hops as usize, rng)
            }
        };
        let Some(path) = path else {
            failures += 1;
            continue;
        };
        demand += path.len() as f64;
        let cost = spec.costs.sample(rng);
        inst.push(Request::from_path(&path, cost));
    }
    (g, inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_workload_hits_overload_target() {
        let spec = PathWorkloadSpec::line_default(32, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let (g, inst) = random_path_workload(&spec, &mut rng);
        assert_eq!(g.num_edges(), 32);
        let demand: f64 = inst.requests.iter().map(|r| r.footprint.len() as f64).sum();
        let capacity_mass = 32.0 * 4.0;
        assert!(demand >= 2.0 * capacity_mass, "demand {demand}");
        assert!(demand <= 2.0 * capacity_mass + spec.max_hops as f64);
    }

    #[test]
    fn all_footprints_are_valid_paths() {
        for topo in [
            Topology::Line { m: 16 },
            Topology::Tree { levels: 4 },
            Topology::Grid { rows: 3, cols: 4 },
            Topology::Gnp { n: 20, p: 0.2 },
        ] {
            let spec = PathWorkloadSpec {
                topology: topo,
                capacity: 2,
                overload: 1.5,
                costs: CostModel::Unit,
                max_hops: 5,
            };
            let mut rng = StdRng::seed_from_u64(7);
            let (g, inst) = random_path_workload(&spec, &mut rng);
            assert!(!inst.requests.is_empty());
            for r in &inst.requests {
                assert!(!r.footprint.is_empty());
                assert!(r.footprint.len() <= 5);
                for e in r.footprint.iter() {
                    assert!(e.index() < g.num_edges());
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = PathWorkloadSpec::line_default(16, 2);
        let a = random_path_workload(&spec, &mut StdRng::seed_from_u64(3)).1;
        let b = random_path_workload(&spec, &mut StdRng::seed_from_u64(3)).1;
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn weighted_costs_applied() {
        let spec = PathWorkloadSpec {
            costs: CostModel::Uniform { lo: 2.0, hi: 9.0 },
            ..PathWorkloadSpec::line_default(16, 2)
        };
        let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(4));
        assert!(inst.requests.iter().all(|r| (2.0..=9.0).contains(&r.cost)));
        assert!(!inst.is_unweighted());
    }

    #[test]
    fn low_overload_is_underloaded() {
        let spec = PathWorkloadSpec {
            overload: 0.5,
            ..PathWorkloadSpec::line_default(24, 4)
        };
        let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(5));
        // Max excess can still be positive locally, but total demand is
        // half of capacity mass.
        let demand: f64 = inst.requests.iter().map(|r| r.footprint.len() as f64).sum();
        assert!(demand <= 0.5 * 24.0 * 4.0 + 9.0);
    }
}
