//! Adversarial instances that stress the preemption machinery.
//!
//! These are the structures lower-bound arguments in this literature
//! are built from: nested intervals on a line (each new request
//! overlaps all previous ones on a shrinking core), a single hot edge
//! hammered far beyond capacity, and a two-phase squeeze mirroring the
//! §4 reduction (fill to capacity, then force preemptions one by one).

use acmr_core::{AdmissionInstance, Request};
use acmr_graph::{EdgeId, EdgeSet};

/// Nested intervals on a line of `m` edges with capacity `cap`:
/// request `i` covers edges `[0, m − i·shrink)` — every later request
/// nests inside the earlier ones, so edge 0 is the choke point while
/// outer edges see decreasing load. `rounds` full nests are issued.
///
/// OPT rejects the *widest* requests (they hog everything); greedy
/// FCFS baselines keep them and then must reject many narrow ones.
pub fn nested_intervals(m: u32, cap: u32, shrink: u32, rounds: u32) -> AdmissionInstance {
    assert!(m >= 2 && shrink >= 1);
    let mut inst = AdmissionInstance::from_capacities(vec![cap; m as usize]);
    for _ in 0..rounds {
        let mut width = m;
        let mut i = 0u32;
        while width >= 1 {
            let fp: EdgeSet = (0..width).map(EdgeId).collect();
            inst.push(Request::new(fp, 1.0 + i as f64)); // narrower = pricier
            if width <= shrink {
                break;
            }
            width -= shrink;
            i += 1;
        }
    }
    inst
}

/// `total` unit requests on a single edge of capacity `cap` (all other
/// `m − 1` edges idle). OPT = `total − cap`; drives E1/E2 calibration.
pub fn repeated_hot_edge(m: u32, cap: u32, total: u32) -> AdmissionInstance {
    assert!(m >= 1);
    let mut inst = AdmissionInstance::from_capacities(vec![cap; m as usize]);
    for _ in 0..total {
        inst.push(Request::unit(EdgeSet::singleton(EdgeId(0))));
    }
    inst
}

/// Two-phase squeeze mirroring the §4 reduction: `width`-edge requests
/// fill every edge of an `m`-edge network exactly to capacity `cap`
/// (phase 1), then `hits` expensive single-edge requests land on edge
/// 0 (phase 2), each forcing a preemption among the incumbents.
pub fn two_phase_squeeze(m: u32, cap: u32, width: u32, hits: u32) -> AdmissionInstance {
    assert!(width >= 1 && width <= m);
    assert!(hits <= cap, "phase 2 cannot exceed edge-0 capacity");
    let mut inst = AdmissionInstance::from_capacities(vec![cap; m as usize]);
    // Phase 1: sliding windows, `cap` passes, wrapping.
    for _ in 0..cap {
        let mut start = 0u32;
        while start < m {
            let fp: EdgeSet = (start..(start + width).min(m)).map(EdgeId).collect();
            inst.push(Request::unit(fp));
            start += width;
        }
    }
    // Phase 2: expensive hits on edge 0.
    for _ in 0..hits {
        inst.push(Request::new(EdgeSet::singleton(EdgeId(0)), 1_000.0));
    }
    inst
}

/// Geometric cost-escalation waves that punish non-preempting
/// algorithms — the buyback (cancellation-cost) stress instance.
///
/// Wave `w ∈ [0, waves)` issues `cap` single-edge requests of cost
/// `growth^w` on **every** edge of an `m`-edge network, so each wave
/// re-saturates the whole network at `growth×` the previous wave's
/// prices. A preemptor whose upgrade margin is below `growth` swaps
/// its incumbents out each wave (paying `f × cost` per cancellation
/// under a buyback factor `f`) and ends the trace holding the final,
/// most expensive wave; a non-preempting algorithm keeps wave 0's
/// cheap squatters and rejects *every* later wave, paying roughly
/// `growth×` what OPT rejects. `growth` must exceed the buyback rule's
/// `1 + δ = 1 + f + √(f(1+f))` margin for the factor under test, or
/// even the buyback policy sits tight (e.g. `growth = 4` covers every
/// `f ≤ 1`).
///
/// All footprints are singletons, so OPT is exact and per-edge: keep
/// the `cap` most expensive requests on each edge (the final wave),
/// reject the rest.
pub fn buyback_hostile(m: u32, cap: u32, waves: u32, growth: f64) -> AdmissionInstance {
    assert!(m >= 1 && cap >= 1 && waves >= 2);
    assert!(
        growth.is_finite() && growth > 1.0,
        "growth must be finite and > 1"
    );
    let mut inst = AdmissionInstance::from_capacities(vec![cap; m as usize]);
    let mut cost = 1.0;
    for _ in 0..waves {
        for e in 0..m {
            for _ in 0..cap {
                inst.push(Request::new(EdgeSet::singleton(EdgeId(e)), cost));
            }
        }
        cost *= growth;
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_intervals_shape() {
        let inst = nested_intervals(8, 2, 2, 1);
        // Widths: 8, 6, 4, 2 → 4 requests.
        assert_eq!(inst.requests.len(), 4);
        assert_eq!(inst.requests[0].footprint.len(), 8);
        assert_eq!(inst.requests[3].footprint.len(), 2);
        // Edge 0 is in every footprint.
        assert!(inst
            .requests
            .iter()
            .all(|r| r.footprint.contains(EdgeId(0))));
        // Later requests cost more.
        assert!(inst.requests[3].cost > inst.requests[0].cost);
    }

    #[test]
    fn nested_rounds_multiply() {
        let one = nested_intervals(8, 2, 2, 1).requests.len();
        let three = nested_intervals(8, 2, 2, 3).requests.len();
        assert_eq!(three, 3 * one);
    }

    #[test]
    fn hot_edge_excess() {
        let inst = repeated_hot_edge(4, 3, 10);
        assert_eq!(inst.requests.len(), 10);
        assert_eq!(inst.max_excess(), 7);
        assert!(inst.is_unweighted());
    }

    #[test]
    fn squeeze_phase1_exactly_fills() {
        let inst = two_phase_squeeze(6, 2, 3, 2);
        // Phase 1: 2 passes × 2 windows = 4 requests; phase 2: 2.
        assert_eq!(inst.requests.len(), 6);
        // Count load per edge from phase 1 only.
        let mut load = vec![0u32; 6];
        for r in inst.requests.iter().take(4) {
            for e in r.footprint.iter() {
                load[e.index()] += 1;
            }
        }
        assert!(load.iter().all(|&l| l == 2), "load {load:?}");
        // Phase 2 requests are expensive singletons on edge 0.
        assert_eq!(inst.requests[4].footprint.len(), 1);
        assert!(inst.requests[4].cost > 100.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn squeeze_rejects_too_many_hits() {
        two_phase_squeeze(6, 2, 3, 5);
    }

    #[test]
    fn buyback_hostile_escalates_geometrically() {
        let inst = buyback_hostile(3, 2, 4, 4.0);
        // waves × m × cap requests, all singletons.
        assert_eq!(inst.requests.len(), 4 * 3 * 2);
        assert!(inst.requests.iter().all(|r| r.footprint.len() == 1));
        // Wave w costs growth^w.
        assert_eq!(inst.requests[0].cost, 1.0);
        assert_eq!(inst.requests[6].cost, 4.0);
        assert_eq!(inst.requests[23].cost, 64.0);
        // Every wave saturates every edge exactly to capacity.
        let mut per_edge = vec![0u32; 3];
        for r in inst.requests.iter().take(6) {
            per_edge[r.footprint.iter().next().unwrap().index()] += 1;
        }
        assert_eq!(per_edge, vec![2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "finite and > 1")]
    fn buyback_hostile_rejects_flat_growth() {
        buyback_hostile(2, 1, 2, 1.0);
    }
}
