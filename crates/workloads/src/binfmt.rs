//! `ACMR-TRACE v2` — the binary, mmap-able trace format: writer,
//! streaming reader, zero-copy mapped reader, and format sniffing.
//!
//! The plain-text v1 format ([`crate::trace`]) is greppable and
//! diffable, but parsing it is the measured ingestion ceiling
//! (`BENCH_streaming.json`). v2 stores the same instances as
//! fixed-layout little-endian records that replay with no float
//! parsing, no UTF-8 validation, and — through [`BinTraceMap`] — no
//! copying: requests are decoded straight out of an `mmap(2)`ed file.
//! Full layout spec: `docs/TRACE_FORMAT.md` (§ `ACMR-TRACE v2`).
//!
//! ```text
//! header  := magic "ACMRTRCB" (8 bytes)
//!            version u32 = 2
//!            edges   u32 = m
//!            caps    u32 × m        (each ≥ 1)
//!            requests u64 = n
//! record  := cost f64 (raw IEEE-754 bits)
//!            k    u16 ≥ 1
//!            edge u32 × k           (strictly increasing, < m)
//! ```
//!
//! All integers and the cost are little-endian. Costs round-trip
//! **bit-exactly** (the text format's shortest-repr decimal also
//! round-trips, so text ↔ binary conversion is lossless in both
//! directions). Footprints are stored in [`EdgeSet`] canonical order —
//! sorted, deduplicated — so encoding is bijective: re-encoding a
//! decoded trace reproduces the input byte for byte.
//!
//! Errors are [`AcmrError::TraceParse`] like the text reader's, with
//! one convention shift: `line` carries the **1-based record index**
//! (0 for header errors) instead of a line number — binary traces have
//! no lines. Malformed input never panics and never reads out of
//! bounds; the `binfmt_fuzz` suite pins this under byte-level
//! corruption and truncation.
//!
//! Readers implement [`RequestSource`], so they plug into
//! `Session::run_stream` and every two-pass harness runner exactly
//! like the text [`TraceReader`] — [`open_trace`] sniffs the leading
//! magic and returns whichever reader the file calls for.

use crate::trace::{TraceReader, CHUNK_SIZE};
use acmr_core::{AcmrError, AdmissionInstance, Request, RequestSource};
use acmr_graph::{EdgeId, EdgeSet};
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Leading magic of a binary `ACMR-TRACE v2` file.
pub const BIN_MAGIC: [u8; 8] = *b"ACMRTRCB";

/// Format version the binary reader/writer speak.
pub const BIN_VERSION: u32 = 2;

/// Leading bytes of a plain-text trace (`ACMR-TRACE v1`), used by the
/// sniffers to tell the two formats apart.
const TEXT_MAGIC: &[u8] = b"ACMR-TRACE";

/// Fixed prefix before the caps table: magic (8) + version (4) +
/// edge count (4).
const FIXED_PREFIX: usize = 16;

/// Bytes of one record before its edge ids: cost (8) + edge count (2).
/// Public because the `ACMR-SERVE v2` wire reuses record bytes as
/// arrival frames and sizes its reads with this.
pub const RECORD_PREFIX: usize = 10;

/// Typed binary-trace error: `line` is the 1-based record index (0 for
/// header errors) — binary traces have no lines.
fn berr(record: usize, message: impl Into<String>) -> AcmrError {
    AcmrError::TraceParse {
        line: record,
        message: message.into(),
    }
}

/// Which trace dialect a byte stream speaks, decided from its leading
/// magic. See [`sniff_bytes`] / [`sniff_path`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Plain-text `ACMR-TRACE v1` (`docs/TRACE_FORMAT.md`, § v1).
    TextV1,
    /// Binary `ACMR-TRACE v2` (this module).
    BinaryV2,
}

impl TraceFormat {
    /// Short label (`"text"` / `"binary"`) for CLI flags and messages.
    pub fn label(self) -> &'static str {
        match self {
            TraceFormat::TextV1 => "text",
            TraceFormat::BinaryV2 => "binary",
        }
    }

    /// Full human-readable description, version included.
    pub fn describe(self) -> &'static str {
        match self {
            TraceFormat::TextV1 => "ACMR-TRACE v1 (text)",
            TraceFormat::BinaryV2 => "ACMR-TRACE v2 (binary)",
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Decide the trace format from the first bytes of a stream (8 are
/// enough; fewer work when the stream itself is shorter). Unknown
/// leading magic is a typed [`AcmrError::TraceParse`] refusal — never
/// a mis-parse of binary bytes as text — pointing, via its `Display`,
/// at `docs/TRACE_FORMAT.md`.
pub fn sniff_bytes(prefix: &[u8]) -> Result<TraceFormat, AcmrError> {
    let is_prefix_of = |magic: &[u8]| {
        let n = prefix.len().min(magic.len());
        prefix[..n] == magic[..n]
    };
    // An empty/short stream is a prefix of both magics; classify it as
    // text so the v1 reader reports its precise "empty trace" /
    // "bad header" error.
    if is_prefix_of(TEXT_MAGIC) {
        Ok(TraceFormat::TextV1)
    } else if is_prefix_of(&BIN_MAGIC) {
        Ok(TraceFormat::BinaryV2)
    } else {
        Err(berr(
            0,
            "unrecognized trace magic: expected text \"ACMR-TRACE v1\" or binary \"ACMRTRCB\"",
        ))
    }
}

/// [`sniff_bytes`] for a file: opens it and reads the leading magic.
pub fn sniff_path(path: impl AsRef<Path>) -> Result<TraceFormat, AcmrError> {
    let path = path.as_ref();
    let mut file = File::open(path).map_err(|e| AcmrError::Io {
        message: format!("cannot open trace {}: {e}", path.display()),
    })?;
    let mut prefix = [0u8; BIN_MAGIC.len()];
    let mut filled = 0;
    while filled < prefix.len() {
        match file.read(&mut prefix[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                return Err(AcmrError::Io {
                    message: format!("cannot read trace {}: {e}", path.display()),
                })
            }
        }
    }
    sniff_bytes(&prefix[..filled])
}

/// Check magic + version and return the declared edge count `m` from
/// the 16-byte fixed prefix — the header sub-parse shared by the
/// streaming and mapped readers.
fn parse_fixed_prefix(bytes: &[u8; FIXED_PREFIX]) -> Result<u32, AcmrError> {
    if bytes[..8] != BIN_MAGIC {
        return Err(berr(
            0,
            "bad magic: not a binary ACMR-TRACE v2 file (expected leading \"ACMRTRCB\")",
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != BIN_VERSION {
        return Err(berr(
            0,
            format!("unsupported binary trace version {version} (this build reads v{BIN_VERSION})"),
        ));
    }
    Ok(u32::from_le_bytes(
        bytes[12..16].try_into().expect("4 bytes"),
    ))
}

/// Parse the caps table and declared request count from the header
/// bytes after the fixed prefix (must hold exactly `4m + 8` bytes).
fn parse_caps_and_count(bytes: &[u8], m: u32) -> Result<(Vec<u32>, u64), AcmrError> {
    debug_assert_eq!(bytes.len(), m as usize * 4 + 8);
    let (caps_bytes, count_bytes) = bytes.split_at(m as usize * 4);
    let mut capacities = Vec::with_capacity(m as usize);
    for (i, chunk) in caps_bytes.chunks_exact(4).enumerate() {
        let cap = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        if cap == 0 {
            return Err(berr(0, format!("capacity of edge {i} must be positive")));
        }
        capacities.push(cap);
    }
    let declared = u64::from_le_bytes(count_bytes.try_into().expect("8 bytes"));
    Ok((capacities, declared))
}

/// Validate one decoded record body and build the [`Request`]: finite
/// positive cost, edge ids strictly increasing (the canonical
/// [`EdgeSet`] order, so no re-sort is needed) and `< num_edges`.
#[inline]
fn request_from_parts(
    cost: f64,
    id_bytes: &[u8],
    record: usize,
    num_edges: u32,
) -> Result<Request, AcmrError> {
    if !(cost > 0.0 && cost.is_finite()) {
        return Err(berr(record, format!("bad cost {cost}")));
    }
    debug_assert_eq!(id_bytes.len() % 4, 0);
    let mut edges: Vec<EdgeId> = Vec::with_capacity(id_bytes.len() / 4);
    let mut prev = None;
    for chunk in id_bytes.chunks_exact(4) {
        let id = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        if id >= num_edges {
            return Err(berr(record, format!("edge id {id} out of range")));
        }
        if prev.is_some_and(|p| id <= p) {
            return Err(berr(
                record,
                "edge ids must be strictly increasing (sorted, deduplicated)",
            ));
        }
        prev = Some(id);
        edges.push(EdgeId(id));
    }
    Ok(Request::new(EdgeSet::from_sorted(edges), cost))
}

/// Encode one request as an `ACMR-TRACE v2` record, appending the
/// bytes to `buf`: cost (`f64` LE), edge count (`u16` LE), then the
/// footprint's edge ids (`u32` LE each, strictly increasing — the
/// canonical [`EdgeSet`] order, which the footprint already is).
///
/// This is the byte image [`BinTraceWriter::push`] writes to a trace
/// file **and** the arrival-frame payload of the `ACMR-SERVE v2`
/// socket protocol — one codec, so file ≡ socket holds by
/// construction (`docs/SERVING.md` specifies the wire use).
pub fn encode_record_into(buf: &mut Vec<u8>, r: &Request, num_edges: u32) -> io::Result<()> {
    let ids = r.footprint.as_slice();
    let k = u16::try_from(ids.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "binary trace format caps a footprint at {} edges (got {})",
                u16::MAX,
                ids.len()
            ),
        )
    })?;
    if let Some(out) = ids.iter().find(|e| e.0 >= num_edges) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("edge id {} out of range for {num_edges} edges", out.0),
        ));
    }
    buf.reserve(RECORD_PREFIX + 4 * ids.len());
    buf.extend_from_slice(&r.cost.to_le_bytes());
    buf.extend_from_slice(&k.to_le_bytes());
    for e in ids {
        buf.extend_from_slice(&e.0.to_le_bytes());
    }
    Ok(())
}

/// Decode the record at byte offset `at` of `bytes`, returning the
/// request and the offset just past it — the one record decoder shared
/// by [`BinTraceMap`] iteration, the in-memory paths, **and** the
/// `ACMR-SERVE v2` wire (arrival frames are exactly these record
/// bytes — the inverse of [`encode_record_into`]). Bounds are
/// checked on every access; truncation is a typed error naming
/// `record` (0-based; wire callers pass the arrival index).
#[inline]
pub fn decode_record(
    bytes: &[u8],
    at: usize,
    record: usize,
    num_edges: u32,
) -> Result<(Request, usize), AcmrError> {
    let prefix = bytes
        .get(at..at + RECORD_PREFIX)
        .ok_or_else(|| berr(record, "truncated record"))?;
    let cost = f64::from_le_bytes(prefix[..8].try_into().expect("8 bytes"));
    let k = u16::from_le_bytes(prefix[8..10].try_into().expect("2 bytes")) as usize;
    if k == 0 {
        return Err(berr(record, "request has no edges"));
    }
    let end = at + RECORD_PREFIX + 4 * k;
    let id_bytes = bytes
        .get(at + RECORD_PREFIX..end)
        .ok_or_else(|| berr(record, "truncated record"))?;
    Ok((request_from_parts(cost, id_bytes, record, num_edges)?, end))
}

/// Incremental writer for the binary `ACMR-TRACE v2` format — the
/// binary twin of [`crate::trace::TraceWriter`], with the same
/// declared-count discipline: the header goes out up front,
/// [`BinTraceWriter::push`] appends one record, and
/// [`BinTraceWriter::finish`] refuses to leave a short trace behind.
pub struct BinTraceWriter<W: Write> {
    sink: W,
    num_edges: u32,
    declared: u64,
    written: u64,
    /// Reusable record buffer so each push is one `write_all`.
    buf: Vec<u8>,
}

impl<W: Write> BinTraceWriter<W> {
    /// Write the v2 header for `requests` upcoming requests over the
    /// given capacities.
    pub fn new(mut sink: W, capacities: &[u32], requests: u64) -> io::Result<Self> {
        let num_edges = u32::try_from(capacities.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "binary trace format caps the edge count at u32::MAX",
            )
        })?;
        let mut header = Vec::with_capacity(FIXED_PREFIX + capacities.len() * 4 + 8);
        header.extend_from_slice(&BIN_MAGIC);
        header.extend_from_slice(&BIN_VERSION.to_le_bytes());
        header.extend_from_slice(&num_edges.to_le_bytes());
        for &c in capacities {
            header.extend_from_slice(&c.to_le_bytes());
        }
        header.extend_from_slice(&requests.to_le_bytes());
        sink.write_all(&header)?;
        Ok(BinTraceWriter {
            sink,
            num_edges,
            declared: requests,
            written: 0,
            buf: Vec::new(),
        })
    }

    /// Append one request record.
    pub fn push(&mut self, r: &Request) -> io::Result<()> {
        if self.written == self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "trace declared {} requests; push overflows it",
                    self.declared
                ),
            ));
        }
        self.buf.clear();
        encode_record_into(&mut self.buf, r, self.num_edges)?;
        self.sink.write_all(&self.buf)?;
        self.written += 1;
        Ok(())
    }

    /// Flush and return the sink, verifying the declared count.
    pub fn finish(mut self) -> io::Result<W> {
        if self.written != self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace declared {} requests but only {} were written",
                    self.declared, self.written
                ),
            ));
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming reader for binary traces over any [`io::Read`] — the
/// binary twin of the text [`TraceReader`]: header parsed eagerly at
/// construction, one validated [`Request`] per [`next_request`] call
/// in bounded memory, poisoning after the first error.
///
/// [`next_request`]: RequestSource::next_request
pub struct BinTraceReader<R: Read> {
    inner: BufReader<R>,
    capacities: Vec<u32>,
    declared: u64,
    yielded: u64,
    finished: bool,
    poison: Option<AcmrError>,
    /// Reusable scratch for each record's edge-id bytes.
    buf: Vec<u8>,
}

impl BinTraceReader<File> {
    /// Open a binary trace file for streaming.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, AcmrError> {
        let path = path.as_ref();
        let file = File::open(path).map_err(|e| AcmrError::Io {
            message: format!("cannot open trace {}: {e}", path.display()),
        })?;
        BinTraceReader::new(file)
    }
}

impl<R: Read> BinTraceReader<R> {
    /// Wrap any byte source and parse the v2 header.
    pub fn new(reader: R) -> Result<Self, AcmrError> {
        let mut inner = BufReader::with_capacity(CHUNK_SIZE, reader);
        let mut prefix = [0u8; FIXED_PREFIX];
        read_exact_header(&mut inner, &mut prefix)?;
        let m = parse_fixed_prefix(&prefix)?;
        // Read the caps table + request count with `take`, so a bogus
        // huge `m` in a small file hits EOF instead of a huge upfront
        // allocation.
        let want = m as u64 * 4 + 8;
        let mut rest = Vec::new();
        (&mut inner)
            .take(want)
            .read_to_end(&mut rest)
            .map_err(AcmrError::from)?;
        if (rest.len() as u64) < want {
            return Err(berr(0, "truncated header"));
        }
        let (capacities, declared) = parse_caps_and_count(&rest, m)?;
        Ok(BinTraceReader {
            inner,
            capacities,
            declared,
            yielded: 0,
            finished: false,
            poison: None,
            buf: Vec::new(),
        })
    }

    /// Edge capacities from the header.
    pub fn capacities(&self) -> &[u32] {
        &self.capacities
    }

    /// Request count declared by the header.
    pub fn declared_requests(&self) -> u64 {
        self.declared
    }

    /// Requests yielded so far.
    pub fn requests_read(&self) -> u64 {
        self.yielded
    }

    fn pull(&mut self) -> Result<Option<Request>, AcmrError> {
        if let Some(e) = &self.poison {
            return Err(e.clone());
        }
        match self.pull_inner() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }

    fn pull_inner(&mut self) -> Result<Option<Request>, AcmrError> {
        if self.finished {
            return Ok(None);
        }
        let record = usize::try_from(self.yielded + 1).unwrap_or(usize::MAX);
        if self.yielded == self.declared {
            // Body complete: exactly EOF may remain.
            let mut probe = [0u8; 1];
            loop {
                match self.inner.read(&mut probe) {
                    Ok(0) => break,
                    Ok(_) => return Err(berr(record, "trailing content after the last record")),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            self.finished = true;
            return Ok(None);
        }
        let mut prefix = [0u8; RECORD_PREFIX];
        read_exact_record(&mut self.inner, &mut prefix, record)?;
        let cost = f64::from_le_bytes(prefix[..8].try_into().expect("8 bytes"));
        let k = u16::from_le_bytes(prefix[8..10].try_into().expect("2 bytes")) as usize;
        if k == 0 {
            return Err(berr(record, "request has no edges"));
        }
        self.buf.resize(4 * k, 0);
        let mut ids = std::mem::take(&mut self.buf);
        let read = read_exact_record(&mut self.inner, &mut ids, record);
        self.buf = ids;
        read?;
        let request = request_from_parts(cost, &self.buf, record, self.capacities.len() as u32)?;
        self.yielded += 1;
        Ok(Some(request))
    }
}

/// `read_exact` during header parsing: EOF is a truncated header.
fn read_exact_header<R: Read>(inner: &mut BufReader<R>, buf: &mut [u8]) -> Result<(), AcmrError> {
    inner.read_exact(buf).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => berr(0, "truncated header"),
        _ => e.into(),
    })
}

/// `read_exact` during record reads: EOF is a truncated record.
fn read_exact_record<R: Read>(
    inner: &mut BufReader<R>,
    buf: &mut [u8],
    record: usize,
) -> Result<(), AcmrError> {
    inner.read_exact(buf).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => berr(record, "truncated record"),
        _ => e.into(),
    })
}

impl<R: Read> std::fmt::Debug for BinTraceReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinTraceReader")
            .field("edges", &self.capacities.len())
            .field("declared_requests", &self.declared)
            .field("requests_read", &self.yielded)
            .field("poisoned", &self.poison.is_some())
            .finish_non_exhaustive()
    }
}

impl<R: Read> Iterator for BinTraceReader<R> {
    type Item = Result<Request, AcmrError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.pull().transpose()
    }
}

impl<R: Read> RequestSource for BinTraceReader<R> {
    fn capacities(&self) -> &[u32] {
        &self.capacities
    }

    fn declared_requests(&self) -> u64 {
        self.declared
    }
}

/// A whole binary trace held as one byte region — an `mmap(2)` of the
/// file when the platform allows it, a heap read otherwise — with the
/// header validated once at open. [`BinTraceMap::into_reader`] turns
/// it into the zero-copy replay cursor ([`BinMapReader`]); records are
/// decoded lazily straight out of the region, so replay touches each
/// byte exactly once and copies nothing but the requests it yields.
pub struct BinTraceMap {
    backing: Backing,
    capacities: Vec<u32>,
    declared: u64,
    /// Byte offset where the first record starts.
    body: usize,
}

enum Backing {
    Mapped(memmap2::Mmap),
    Heap(Vec<u8>),
}

impl BinTraceMap {
    /// Open and validate a binary trace file, mapping it when possible
    /// and falling back to a heap read when `mmap` is unavailable or
    /// refuses (non-Unix platforms, special files).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, AcmrError> {
        let path = path.as_ref();
        let file = File::open(path).map_err(|e| AcmrError::Io {
            message: format!("cannot open trace {}: {e}", path.display()),
        })?;
        // SAFETY: the mapping is read-only and private; mutating the
        // trace mid-replay is outside the supported contract exactly
        // as it is for the chunked readers (both detect it only as a
        // parse/count mismatch, never as memory unsafety for Heap —
        // callers shipping corpora are expected to treat them as
        // immutable, see docs/OPERATIONS.md).
        #[allow(unsafe_code)]
        let backing = match unsafe { memmap2::Mmap::map(&file) } {
            Ok(map) => Backing::Mapped(map),
            Err(_) => {
                let mut bytes = Vec::new();
                let mut file = file;
                file.read_to_end(&mut bytes).map_err(|e| AcmrError::Io {
                    message: format!("cannot read trace {}: {e}", path.display()),
                })?;
                Backing::Heap(bytes)
            }
        };
        Self::from_backing(backing)
    }

    /// Validate an in-memory byte image of a binary trace (the fuzz
    /// suites and tests go through this; no file needed).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, AcmrError> {
        Self::from_backing(Backing::Heap(bytes))
    }

    fn from_backing(backing: Backing) -> Result<Self, AcmrError> {
        let bytes: &[u8] = match &backing {
            Backing::Mapped(m) => m,
            Backing::Heap(v) => v,
        };
        let prefix: &[u8; FIXED_PREFIX] = bytes
            .get(..FIXED_PREFIX)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| berr(0, "truncated header"))?;
        let m = parse_fixed_prefix(prefix)?;
        let body = (m as usize)
            .checked_mul(4)
            .and_then(|caps| caps.checked_add(FIXED_PREFIX + 8))
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| berr(0, "truncated header"))?;
        let (capacities, declared) = parse_caps_and_count(&bytes[FIXED_PREFIX..body], m)?;
        Ok(BinTraceMap {
            backing,
            capacities,
            declared,
            body,
        })
    }

    /// The raw bytes of the whole trace (header included).
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            Backing::Mapped(m) => m,
            Backing::Heap(v) => v,
        }
    }

    /// True when the backing is a real memory mapping (false on the
    /// read-to-heap fallback).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// Edge capacities from the header.
    pub fn capacities(&self) -> &[u32] {
        &self.capacities
    }

    /// Request count declared by the header.
    pub fn declared_requests(&self) -> u64 {
        self.declared
    }

    /// Turn the map into an owning zero-copy replay cursor.
    pub fn into_reader(self) -> BinMapReader {
        let body = self.body;
        BinMapReader {
            map: Arc::new(self),
            at: body,
            yielded: 0,
            finished: false,
            poison: None,
        }
    }
}

impl std::fmt::Debug for BinTraceMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinTraceMap")
            .field("edges", &self.capacities.len())
            .field("declared_requests", &self.declared)
            .field("bytes", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// Owning replay cursor over a [`BinTraceMap`]: yields each request
/// decoded straight from the mapped (or heap-fallback) bytes, with the
/// same validation, poisoning, and clean-EOF contract as the streaming
/// readers. Cheap to clone a fresh one from the shared map (`Arc`).
pub struct BinMapReader {
    map: Arc<BinTraceMap>,
    at: usize,
    yielded: u64,
    finished: bool,
    poison: Option<AcmrError>,
}

impl BinMapReader {
    /// Open a binary trace file and return a replay cursor over it.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, AcmrError> {
        Ok(BinTraceMap::open(path)?.into_reader())
    }

    /// The shared map this cursor replays.
    pub fn map(&self) -> &Arc<BinTraceMap> {
        &self.map
    }

    /// A fresh cursor over the same map, rewound to the first record.
    pub fn rewound(&self) -> BinMapReader {
        BinMapReader {
            map: Arc::clone(&self.map),
            at: self.map.body,
            yielded: 0,
            finished: false,
            poison: None,
        }
    }

    /// Requests yielded so far.
    pub fn requests_read(&self) -> u64 {
        self.yielded
    }

    fn pull(&mut self) -> Result<Option<Request>, AcmrError> {
        if let Some(e) = &self.poison {
            return Err(e.clone());
        }
        match self.pull_inner() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }

    fn pull_inner(&mut self) -> Result<Option<Request>, AcmrError> {
        if self.finished {
            return Ok(None);
        }
        let bytes = self.map.bytes();
        let record = usize::try_from(self.yielded + 1).unwrap_or(usize::MAX);
        if self.yielded == self.map.declared {
            if self.at != bytes.len() {
                return Err(berr(record, "trailing content after the last record"));
            }
            self.finished = true;
            return Ok(None);
        }
        let (request, next) =
            decode_record(bytes, self.at, record, self.map.capacities.len() as u32)?;
        self.at = next;
        self.yielded += 1;
        Ok(Some(request))
    }
}

impl std::fmt::Debug for BinMapReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinMapReader")
            .field("map", &self.map)
            .field("requests_read", &self.yielded)
            .field("poisoned", &self.poison.is_some())
            .finish()
    }
}

impl Iterator for BinMapReader {
    type Item = Result<Request, AcmrError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.pull().transpose()
    }
}

impl RequestSource for BinMapReader {
    fn capacities(&self) -> &[u32] {
        &self.map.capacities
    }

    fn declared_requests(&self) -> u64 {
        self.map.declared
    }
}

/// A trace reader of whichever format a file turned out to be — what
/// [`open_trace`] returns, and the one seam every path-backed tool
/// (`run --stream FILE`, sharded/cluster sweeps, `acmr convert`)
/// opens traces through, so each gets both formats for free.
pub enum AnyTraceReader {
    /// Plain-text v1, streamed in chunks.
    Text(TraceReader<File>),
    /// Binary v2, replayed zero-copy off an mmap (heap fallback).
    Binary(BinMapReader),
}

impl AnyTraceReader {
    /// Which format the underlying trace speaks.
    pub fn format(&self) -> TraceFormat {
        match self {
            AnyTraceReader::Text(_) => TraceFormat::TextV1,
            AnyTraceReader::Binary(_) => TraceFormat::BinaryV2,
        }
    }
}

impl Iterator for AnyTraceReader {
    type Item = Result<Request, AcmrError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            AnyTraceReader::Text(r) => r.next(),
            AnyTraceReader::Binary(r) => r.next(),
        }
    }
}

impl RequestSource for AnyTraceReader {
    fn capacities(&self) -> &[u32] {
        match self {
            AnyTraceReader::Text(r) => r.capacities(),
            AnyTraceReader::Binary(r) => RequestSource::capacities(r),
        }
    }

    fn declared_requests(&self) -> u64 {
        match self {
            AnyTraceReader::Text(r) => r.declared_requests() as u64,
            AnyTraceReader::Binary(r) => RequestSource::declared_requests(r),
        }
    }
}

/// Open a trace file of either format: sniff the leading magic and
/// return the matching reader — chunked text streaming for v1, a
/// zero-copy mapped cursor (heap fallback) for binary v2. Unknown
/// magic is a typed refusal, never a mis-parse.
pub fn open_trace(path: impl AsRef<Path>) -> Result<AnyTraceReader, AcmrError> {
    let path = path.as_ref();
    match sniff_path(path)? {
        TraceFormat::TextV1 => Ok(AnyTraceReader::Text(TraceReader::open(path)?)),
        TraceFormat::BinaryV2 => Ok(AnyTraceReader::Binary(BinMapReader::open(path)?)),
    }
}

/// Serialize an instance to binary v2 bytes (in-memory convenience
/// over [`BinTraceWriter`]).
pub fn write_bin_trace(inst: &AdmissionInstance) -> Vec<u8> {
    let mut w = BinTraceWriter::new(Vec::new(), &inst.capacities, inst.requests.len() as u64)
        .expect("writing to a Vec cannot fail");
    for r in &inst.requests {
        w.push(r).expect("writing to a Vec cannot fail");
    }
    w.finish().expect("declared count matches")
}

/// Parse an instance from binary v2 bytes (in-memory convenience over
/// [`BinTraceReader`], so both paths accept exactly the same input).
pub fn read_bin_trace(bytes: &[u8]) -> Result<AdmissionInstance, AcmrError> {
    let mut reader = BinTraceReader::new(bytes)?;
    let mut inst = AdmissionInstance::from_capacities(reader.capacities().to_vec());
    while let Some(r) = reader.pull()? {
        inst.push(r);
    }
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial;
    use crate::trace::write_trace;

    fn sample() -> AdmissionInstance {
        adversarial::nested_intervals(8, 2, 2, 2)
    }

    #[test]
    fn roundtrip_identity_and_bijective_encoding() {
        let inst = sample();
        let bytes = write_bin_trace(&inst);
        let back = read_bin_trace(&bytes).unwrap();
        assert_eq!(back.capacities, inst.capacities);
        assert_eq!(back.requests, inst.requests);
        // Re-encoding reproduces the bytes: the encoding is bijective.
        assert_eq!(write_bin_trace(&back), bytes);
    }

    #[test]
    fn costs_roundtrip_bit_exactly() {
        let mut inst = AdmissionInstance::from_capacities(vec![1]);
        inst.push(Request::new(EdgeSet::singleton(EdgeId(0)), 0.1 + 0.2));
        inst.push(Request::new(
            EdgeSet::singleton(EdgeId(0)),
            f64::MIN_POSITIVE,
        ));
        let back = read_bin_trace(&write_bin_trace(&inst)).unwrap();
        for (a, b) in back.requests.iter().zip(&inst.requests) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
    }

    #[test]
    fn streaming_and_mapped_readers_agree() {
        let inst = sample();
        let bytes = write_bin_trace(&inst);
        let streamed: Vec<Request> = BinTraceReader::new(bytes.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let mapped: Vec<Request> = BinTraceMap::from_bytes(bytes.clone())
            .unwrap()
            .into_reader()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(streamed, inst.requests);
        assert_eq!(mapped, inst.requests);
    }

    #[test]
    fn mapped_file_roundtrip_uses_a_real_mapping() {
        let inst = sample();
        let path = std::env::temp_dir().join(format!("acmr-binfmt-map-{}.bin", std::process::id()));
        let file = std::fs::File::create(&path).unwrap();
        let mut w = BinTraceWriter::new(
            std::io::BufWriter::new(file),
            &inst.capacities,
            inst.requests.len() as u64,
        )
        .unwrap();
        for r in &inst.requests {
            w.push(r).unwrap();
        }
        w.finish().unwrap();

        let map = BinTraceMap::open(&path).unwrap();
        assert!(map.is_mapped(), "expected a real mmap on this platform");
        assert_eq!(map.capacities(), inst.capacities.as_slice());
        assert_eq!(map.declared_requests(), inst.requests.len() as u64);
        let replayed: Vec<Request> = map.into_reader().map(|r| r.unwrap()).collect();
        assert_eq!(replayed, inst.requests);

        // The streaming file reader and the sniffing opener agree.
        let streamed: Vec<Request> = BinTraceReader::open(&path)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(streamed, inst.requests);
        let any = open_trace(&path).unwrap();
        assert_eq!(any.format(), TraceFormat::BinaryV2);
        let via_any: Vec<Request> = any.map(|r| r.unwrap()).collect();
        assert_eq!(via_any, inst.requests);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sniffing_distinguishes_formats_and_refuses_unknown_magic() {
        assert_eq!(
            sniff_bytes(write_trace(&sample()).as_bytes()).unwrap(),
            TraceFormat::TextV1
        );
        assert_eq!(
            sniff_bytes(&write_bin_trace(&sample())).unwrap(),
            TraceFormat::BinaryV2
        );
        // Short prefixes classify by whichever magic they prefix.
        assert_eq!(sniff_bytes(b"ACMR-").unwrap(), TraceFormat::TextV1);
        assert_eq!(sniff_bytes(b"ACMRT").unwrap(), TraceFormat::BinaryV2);
        assert_eq!(sniff_bytes(b"").unwrap(), TraceFormat::TextV1);
        // Unknown magic: typed refusal pointing at the format spec.
        let e = sniff_bytes(b"PNG\x89garbage").unwrap_err();
        assert!(matches!(e, AcmrError::TraceParse { line: 0, .. }));
        assert!(e.to_string().contains("docs/TRACE_FORMAT.md"), "{e}");
        assert_eq!(TraceFormat::TextV1.describe(), "ACMR-TRACE v1 (text)");
        assert_eq!(TraceFormat::BinaryV2.label(), "binary");
    }

    #[test]
    fn header_and_record_violations_are_typed() {
        let valid = write_bin_trace(&sample());
        let cases: Vec<(Vec<u8>, &str)> = vec![
            (b"ACMRTRCB".to_vec(), "truncated header"),
            (
                b"WRONGMAG\x02\x00\x00\x00\x00\x00\x00\x00".to_vec(),
                "bad magic",
            ),
            (
                {
                    let mut b = valid.clone();
                    b[8] = 9; // version
                    b
                },
                "unsupported binary trace version",
            ),
            (
                {
                    let mut b = valid.clone();
                    b[FIXED_PREFIX] = 0; // first capacity → 0
                    b[FIXED_PREFIX + 1] = 0;
                    b[FIXED_PREFIX + 2] = 0;
                    b[FIXED_PREFIX + 3] = 0;
                    b
                },
                "must be positive",
            ),
            (
                {
                    let mut b = valid.clone();
                    b.truncate(b.len() - 3);
                    b
                },
                "truncated record",
            ),
            (
                {
                    let mut b = valid.clone();
                    b.extend_from_slice(b"x");
                    b
                },
                "trailing content",
            ),
        ];
        for (bytes, needle) in cases {
            for via_map in [false, true] {
                let result: Result<usize, AcmrError> = if via_map {
                    BinTraceMap::from_bytes(bytes.clone())
                        .map(BinTraceMap::into_reader)
                        .and_then(|r| {
                            let mut n = 0;
                            for item in r {
                                item?;
                                n += 1;
                            }
                            Ok(n)
                        })
                } else {
                    read_bin_trace(&bytes).map(|i| i.requests.len())
                };
                let e = result.expect_err(needle);
                assert!(
                    e.to_string().contains(needle),
                    "via_map={via_map}: {e} does not mention {needle:?}"
                );
            }
        }
    }

    #[test]
    fn record_value_violations_are_typed() {
        // One edge, cap 1, one request `cost=1, edges=[0]` — then
        // corrupt specific record fields.
        let mut inst = AdmissionInstance::from_capacities(vec![1, 1]);
        inst.push(Request::new(EdgeSet::new(vec![EdgeId(0), EdgeId(1)]), 1.0));
        let valid = write_bin_trace(&inst);
        let body = FIXED_PREFIX + 2 * 4 + 8;

        // Bad cost (zero).
        let mut bad_cost = valid.clone();
        bad_cost[body..body + 8].copy_from_slice(&0f64.to_le_bytes());
        let e = read_bin_trace(&bad_cost).unwrap_err();
        assert!(e.to_string().contains("bad cost"), "{e}");
        // NaN cost.
        bad_cost[body..body + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(read_bin_trace(&bad_cost).is_err());

        // k = 0.
        let mut no_edges = valid.clone();
        no_edges[body + 8] = 0;
        no_edges[body + 9] = 0;
        no_edges.truncate(body + RECORD_PREFIX);
        let e = read_bin_trace(&no_edges).unwrap_err();
        assert!(e.to_string().contains("no edges"), "{e}");

        // Edge id out of range.
        let mut oob = valid.clone();
        oob[body + RECORD_PREFIX..body + RECORD_PREFIX + 4].copy_from_slice(&7u32.to_le_bytes());
        let e = read_bin_trace(&oob).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");

        // Unsorted / duplicate ids.
        let mut dup = valid.clone();
        dup[body + RECORD_PREFIX + 4..body + RECORD_PREFIX + 8]
            .copy_from_slice(&0u32.to_le_bytes());
        let e = read_bin_trace(&dup).unwrap_err();
        assert!(e.to_string().contains("strictly increasing"), "{e}");

        // Errors carry the 1-based record index in `line`.
        assert!(matches!(
            read_bin_trace(&oob).unwrap_err(),
            AcmrError::TraceParse { line: 1, .. }
        ));
    }

    #[test]
    fn readers_poison_after_error() {
        let mut bytes = write_bin_trace(&sample());
        let len = bytes.len();
        bytes.truncate(len - 2);
        let mut reader = BinTraceReader::new(bytes.as_slice()).unwrap();
        let mut first_err = None;
        for item in &mut reader {
            if let Err(e) = item {
                first_err = Some(e);
                break;
            }
        }
        let e1 = first_err.expect("truncated trace must error");
        let e2 = reader.pull().unwrap_err();
        assert_eq!(e1, e2, "poisoned reader must repeat its error");

        let mut cursor = BinTraceMap::from_bytes(bytes).unwrap().into_reader();
        let mut first_err = None;
        for item in &mut cursor {
            if let Err(e) = item {
                first_err = Some(e);
                break;
            }
        }
        let e1 = first_err.expect("truncated trace must error");
        let e2 = cursor.pull().unwrap_err();
        assert_eq!(e1, e2);
    }

    #[test]
    fn writer_enforces_declared_count_and_limits() {
        let r = Request::unit(EdgeSet::singleton(EdgeId(0)));
        // Short: finish refuses.
        let mut w = BinTraceWriter::new(Vec::new(), &[1], 2).unwrap();
        w.push(&r).unwrap();
        assert!(w.finish().is_err());
        // Overflow: the extra push refuses.
        let mut w = BinTraceWriter::new(Vec::new(), &[1], 1).unwrap();
        w.push(&r).unwrap();
        assert!(w.push(&r).is_err());
        assert!(w.finish().is_ok());
        // Out-of-range edge id refuses at push time.
        let mut w = BinTraceWriter::new(Vec::new(), &[1], 1).unwrap();
        let far = Request::unit(EdgeSet::singleton(EdgeId(9)));
        assert!(w.push(&far).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let inst = AdmissionInstance::from_capacities(vec![3, 4]);
        let bytes = write_bin_trace(&inst);
        assert_eq!(bytes.len(), FIXED_PREFIX + 2 * 4 + 8);
        let back = read_bin_trace(&bytes).unwrap();
        assert_eq!(back.capacities, vec![3, 4]);
        assert!(back.requests.is_empty());
        let map = BinTraceMap::from_bytes(bytes).unwrap();
        assert_eq!(map.into_reader().count(), 0);
    }

    #[test]
    fn rewound_cursor_replays_from_the_start() {
        let inst = sample();
        let mut cursor = BinTraceMap::from_bytes(write_bin_trace(&inst))
            .unwrap()
            .into_reader();
        let first: Vec<Request> = (&mut cursor).map(|r| r.unwrap()).collect();
        assert_eq!(cursor.requests_read(), inst.requests.len() as u64);
        let again: Vec<Request> = cursor.rewound().map(|r| r.unwrap()).collect();
        assert_eq!(first, again);
    }
}
