//! Request-cost distributions.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cost model for generated requests.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CostModel {
    /// All costs 1 (the paper's unweighted case).
    Unit,
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (must be > 0).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Discrete Zipf over `{1, …, n_values}` with exponent `s`:
    /// value `v` has probability ∝ `1/v^s`. Heavy-tailed costs —
    /// the regime where the weighted algorithm's cost classes matter.
    Zipf {
        /// Number of distinct values.
        n_values: u32,
        /// Skew exponent (≈1 classic).
        s: f64,
    },
    /// Mixture: cheap cost `lo` with probability `1−p_hi`, expensive
    /// `hi` with probability `p_hi`. Stresses the `R_big` machinery.
    Bimodal {
        /// Cheap value.
        lo: f64,
        /// Expensive value.
        hi: f64,
        /// Probability of the expensive value.
        p_hi: f64,
    },
}

impl CostModel {
    /// Draw one cost.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            CostModel::Unit => 1.0,
            CostModel::Uniform { lo, hi } => {
                debug_assert!(lo > 0.0 && hi >= lo);
                rng.gen_range(lo..=hi)
            }
            CostModel::Zipf { n_values, s } => {
                // Inverse-CDF sampling over the discrete support; n is
                // small (≤ a few thousand) in every experiment.
                let n = n_values.max(1);
                let norm: f64 = (1..=n).map(|v| 1.0 / (v as f64).powf(s)).sum();
                let mut u = rng.gen_range(0.0..1.0) * norm;
                for v in 1..=n {
                    u -= 1.0 / (v as f64).powf(s);
                    if u <= 0.0 {
                        return v as f64;
                    }
                }
                n as f64
            }
            CostModel::Bimodal { lo, hi, p_hi } => {
                if rng.gen_bool(p_hi) {
                    hi
                } else {
                    lo
                }
            }
        }
    }

    /// True iff this model always returns 1.
    pub fn is_unit(&self) -> bool {
        matches!(self, CostModel::Unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_is_one() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(CostModel::Unit.sample(&mut rng), 1.0);
        assert!(CostModel::Unit.is_unit());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = CostModel::Uniform { lo: 2.0, hi: 5.0 };
        for _ in 0..500 {
            let c = m.sample(&mut rng);
            assert!((2.0..=5.0).contains(&c));
        }
    }

    #[test]
    fn zipf_is_heavy_on_small_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = CostModel::Zipf {
            n_values: 100,
            s: 1.2,
        };
        let mut ones = 0;
        let mut total = 0.0;
        for _ in 0..2000 {
            let c = m.sample(&mut rng);
            assert!((1.0..=100.0).contains(&c));
            if c == 1.0 {
                ones += 1;
            }
            total += c;
        }
        assert!(ones > 300, "zipf should concentrate on 1 (got {ones})");
        assert!(total / 2000.0 < 20.0);
    }

    #[test]
    fn bimodal_frequencies() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = CostModel::Bimodal {
            lo: 1.0,
            hi: 50.0,
            p_hi: 0.2,
        };
        let hits = (0..2000).filter(|_| m.sample(&mut rng) == 50.0).count();
        assert!((200..=600).contains(&hits), "p_hi≈0.2 got {hits}/2000");
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let m = CostModel::Zipf {
            n_values: 50,
            s: 1.0,
        };
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
