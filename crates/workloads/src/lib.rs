//! # acmr-workloads
//!
//! Workload generators, adversarial constructions and a plain-text
//! trace format for the admission-control / set-cover experiments.
//!
//! The paper is a theory paper with no benchmark suite; these
//! generators realize the scenarios its introduction motivates
//! (communication requests on virtual paths in capacitated networks,
//! where *rejections are meant to be rare events*) plus adversarial
//! stress instances exercising the preemption machinery the proofs
//! rely on.
//!
//! Everything takes explicit seeds; generation is bit-reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod adversarial;
pub mod cost;
pub mod lower_bound;
pub mod setcover;
pub mod trace;

pub use admission::{random_path_workload, PathWorkloadSpec, Topology};
pub use adversarial::{nested_intervals, repeated_hot_edge, two_phase_squeeze};
pub use cost::CostModel;
pub use lower_bound::{adaptive_least_covered_schedule, dyadic_admission_instance, dyadic_system};
pub use setcover::{
    random_arrivals, random_set_system, structured_partition_system, ArrivalPattern, SetSystemSpec,
};
