//! # acmr-workloads
//!
//! Workload generators, adversarial constructions and a plain-text
//! trace format for the admission-control / set-cover experiments.
//!
//! The paper is a theory paper with no benchmark suite; these
//! generators realize the scenarios its introduction motivates
//! (communication requests on virtual paths in capacitated networks,
//! where *rejections are meant to be rare events*) plus adversarial
//! stress instances exercising the preemption machinery the proofs
//! rely on.
//!
//! Everything takes explicit seeds; generation is bit-reproducible.
//!
//! Traces come in two dialects behind one reader seam
//! ([`acmr_core::RequestSource`]): the plain-text `ACMR-TRACE v1`
//! ([`trace`]) and the binary, mmap-able `ACMR-TRACE v2` ([`binfmt`]).
//! [`open_trace`] sniffs a file's leading magic and returns whichever
//! reader it calls for.

// Not `forbid`: binfmt's mmap-backed map has exactly one scoped
// `#[allow(unsafe_code)]` at its `memmap2::Mmap::map` call.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod adversarial;
pub mod binfmt;
pub mod cost;
pub mod lower_bound;
pub mod setcover;
pub mod stochastic;
pub mod trace;

pub use admission::{random_path_workload, PathWorkloadSpec, Topology};
pub use adversarial::{buyback_hostile, nested_intervals, repeated_hot_edge, two_phase_squeeze};
pub use binfmt::{
    decode_record, encode_record_into, open_trace, read_bin_trace, sniff_bytes, sniff_path,
    write_bin_trace, AnyTraceReader, BinMapReader, BinTraceMap, BinTraceReader, BinTraceWriter,
    TraceFormat,
};
pub use cost::CostModel;
pub use lower_bound::{adaptive_least_covered_schedule, dyadic_admission_instance, dyadic_system};
pub use setcover::{
    random_arrivals, random_set_system, structured_partition_system, ArrivalPattern, SetSystemSpec,
};
pub use stochastic::{stochastic_workload, Phase, StochasticSpec, StochasticSummary, TrafficModel};
