//! Hard instance families in the spirit of the lower bounds the paper
//! cites.
//!
//! Feige & Korman's `Ω(log m log n)` lower bound (personal
//! communication in the paper; unpublished) and the earlier
//! `Ω(log m log n / (log log m + log log n))` bound of Alon et al.
//! \[2\] both rest on *recursive/dyadic* set structure: the adversary
//! walks down a hierarchy, always requesting the element about which
//! the algorithm has revealed the least. We implement a simplified
//! deterministic variant: a **dyadic set system** (one set per node of
//! a complete binary tree over the ground set) and an adversary that
//! repeatedly requests the element whose current coverage is smallest
//! — forcing any online algorithm to spread purchases across all
//! `log n` levels while OPT buys only the leaves-to-root path sets it
//! needs in hindsight.
//!
//! These are *stress* instances: we use them to exercise the
//! algorithms' worst-case machinery, not to claim the lower bound.

use acmr_core::setcover::{OnlineSetCover, SetSystem};
use acmr_core::{AdmissionInstance, Request};
use acmr_graph::{EdgeId, EdgeSet};

/// The dyadic set system over `n = 2^levels` elements: one set per
/// node of a complete binary tree whose leaves are elements; the set
/// of a node contains every element in its subtree.
/// `m = 2n − 1` sets; element degree = `levels + 1`.
pub fn dyadic_system(levels: u32) -> SetSystem {
    assert!((1..=16).contains(&levels), "levels must be in 1..=16");
    let n = 1usize << levels;
    let mut sets: Vec<Vec<u32>> = Vec::with_capacity(2 * n - 1);
    // Level ℓ has 2^ℓ nodes, each spanning n / 2^ℓ consecutive leaves.
    for level in 0..=levels {
        let nodes = 1usize << level;
        let span = n >> level;
        for b in 0..nodes {
            sets.push(((b * span) as u32..((b + 1) * span) as u32).collect());
        }
    }
    SetSystem::unit(n, sets)
}

/// Adversarial schedule against `alg` on a dyadic system: for
/// `rounds·n` steps, request the feasible element with the smallest
/// current coverage (ties → smallest id). Returns the arrival
/// sequence actually played.
///
/// `coverage_of` must report the algorithm's current distinct-set
/// coverage of an element (both paper algorithms expose it).
pub fn adaptive_least_covered_schedule<A, F>(
    system: &SetSystem,
    alg: &mut A,
    coverage_of: F,
    rounds: u32,
) -> Vec<u32>
where
    A: OnlineSetCover,
    F: Fn(&A, u32) -> usize,
{
    let n = system.num_elements();
    let mut count = vec![0u32; n];
    let mut played = Vec::new();
    for _ in 0..rounds as usize * n {
        // Least-covered feasible element.
        let target = (0..n as u32)
            .filter(|&j| (count[j as usize] as usize) < system.degree(j))
            .min_by_key(|&j| (coverage_of(alg, j), j));
        let Some(j) = target else {
            break; // every element exhausted its degree
        };
        count[j as usize] += 1;
        alg.on_arrival(j);
        played.push(j);
    }
    played
}

/// The dyadic structure as an **admission-control** trace: a line of
/// `n = 2^levels` edges with uniform capacity `cap`, and requests whose
/// footprints are the dyadic intervals of the complete binary tree over
/// the edges (the same node set as [`dyadic_system`]), issued root to
/// leaves, `rounds` times over.
///
/// Every round loads each edge once per level, so final per-edge load
/// is `rounds · (levels + 1)` — overloaded whenever that exceeds `cap`
/// — while the overload is *recursively structured*: at every scale an
/// algorithm must decide between evicting one wide (cheap) interval or
/// many narrow (pricey) ones, which is the shape the lower-bound
/// arguments the paper cites hammer. Costs grow with depth (`1 + level`
/// per request), mirroring [`crate::adversarial::nested_intervals`]'s
/// narrower-is-pricier convention.
pub fn dyadic_admission_instance(levels: u32, cap: u32, rounds: u32) -> AdmissionInstance {
    assert!(
        (1..=16).contains(&levels),
        "levels must be in 1..=16 (got {levels})"
    );
    assert!(cap >= 1 && rounds >= 1);
    let n = 1u32 << levels;
    let mut inst = AdmissionInstance::from_capacities(vec![cap; n as usize]);
    for _ in 0..rounds {
        for level in 0..=levels {
            let nodes = 1u32 << level;
            let span = n >> level;
            for b in 0..nodes {
                let fp: EdgeSet = (b * span..(b + 1) * span).map(EdgeId).collect();
                inst.push(Request::new(fp, 1.0 + level as f64));
            }
        }
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use acmr_core::setcover::{BicriteriaCover, ReductionCover};
    use acmr_core::RandConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dyadic_structure() {
        let sys = dyadic_system(3); // n = 8, m = 15
        assert_eq!(sys.num_elements(), 8);
        assert_eq!(sys.num_sets(), 15);
        for j in 0..8u32 {
            assert_eq!(sys.degree(j), 4); // root + 3 levels… = levels+1
        }
        // The root set covers everything.
        assert_eq!(sys.elements_of(acmr_core::setcover::SetId(0)).len(), 8);
        // Leaf sets are singletons.
        assert_eq!(sys.elements_of(acmr_core::setcover::SetId(14)).len(), 1);
    }

    #[test]
    fn dyadic_admission_shape() {
        let inst = dyadic_admission_instance(3, 2, 2); // n = 8 edges
        assert_eq!(inst.num_edges(), 8);
        // One request per tree node per round: (2^4 − 1) × 2.
        assert_eq!(inst.requests.len(), 30);
        // Per-edge load per round is levels + 1 = 4; two rounds = 8.
        assert_eq!(inst.max_excess(), 2 * 4 - 2);
        // The first request of a round is the root interval (all
        // edges, cheapest); the last is a leaf singleton (priciest).
        assert_eq!(inst.requests[0].footprint.len(), 8);
        assert_eq!(inst.requests[0].cost, 1.0);
        assert_eq!(inst.requests[14].footprint.len(), 1);
        assert_eq!(inst.requests[14].cost, 4.0);
        assert!(!inst.is_unweighted());
    }

    #[test]
    #[should_panic(expected = "levels must be in 1..=16")]
    fn dyadic_admission_rejects_zero_levels() {
        dyadic_admission_instance(0, 1, 1);
    }

    #[test]
    fn adversary_respects_feasibility() {
        let sys = dyadic_system(3);
        let mut alg = BicriteriaCover::new(sys.clone(), 0.25);
        let played =
            adaptive_least_covered_schedule(&sys, &mut alg, |a, j| a.coverage(j) as usize, 2);
        assert!(!played.is_empty());
        assert!(sys.arrivals_feasible(&played));
    }

    #[test]
    fn reduction_survives_adaptive_adversary() {
        let sys = dyadic_system(3);
        let mut alg = ReductionCover::randomized(
            sys.clone(),
            RandConfig::unweighted(),
            StdRng::seed_from_u64(17),
        );
        let played = adaptive_least_covered_schedule(&sys, &mut alg, |a, j| a.coverage(j), 2);
        // Coverage contract after the whole adaptive schedule.
        let mut demand = vec![0usize; sys.num_elements()];
        for &j in &played {
            demand[j as usize] += 1;
        }
        for j in 0..sys.num_elements() as u32 {
            assert!(alg.coverage(j) >= demand[j as usize]);
        }
        assert_eq!(alg.repairs(), 0);
    }

    #[test]
    fn adaptive_adversary_is_harder_than_round_robin() {
        // The adaptive schedule should cost at least as much as a
        // plain one-round pass for the deterministic algorithm.
        let sys = dyadic_system(4);
        let adaptive_cost = {
            let mut alg = BicriteriaCover::new(sys.clone(), 0.25);
            adaptive_least_covered_schedule(&sys, &mut alg, |a, j| a.coverage(j) as usize, 1);
            alg.total_cost()
        };
        let rr_cost = {
            let mut alg = BicriteriaCover::new(sys.clone(), 0.25);
            for j in 0..sys.num_elements() as u32 {
                alg.on_arrival(j);
            }
            alg.total_cost()
        };
        assert!(
            adaptive_cost + 1e-9 >= rr_cost * 0.5,
            "adaptive {adaptive_cost} rr {rr_cost}"
        );
    }
}
