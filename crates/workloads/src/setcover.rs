//! Set-system generators and arrival schedules for online set cover
//! with repetitions.

use acmr_core::setcover::SetSystem;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Specification of a random set system.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SetSystemSpec {
    /// Ground-set size `n`.
    pub num_elements: usize,
    /// Family size `m`.
    pub num_sets: usize,
    /// Probability that a given element belongs to a given set.
    pub density: f64,
    /// Minimum element degree enforced after sampling (elements are
    /// patched into random sets until they belong to at least this
    /// many) — keeps repetition schedules feasible.
    pub min_degree: usize,
    /// Uniform-cost range `[1, max_cost]` (1 = unit costs).
    pub max_cost: u32,
}

impl SetSystemSpec {
    /// Unit-cost default with density 0.2 and min degree 2.
    pub fn unit(num_elements: usize, num_sets: usize) -> Self {
        SetSystemSpec {
            num_elements,
            num_sets,
            density: 0.2,
            min_degree: 2,
            max_cost: 1,
        }
    }
}

/// Sample a random set system per the spec.
pub fn random_set_system<R: Rng>(spec: &SetSystemSpec, rng: &mut R) -> SetSystem {
    assert!(spec.num_elements >= 1 && spec.num_sets >= 1);
    assert!(
        spec.min_degree <= spec.num_sets,
        "min_degree cannot exceed the number of sets"
    );
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); spec.num_sets];
    let mut degree = vec![0usize; spec.num_elements];
    for (i, set) in members.iter_mut().enumerate() {
        for j in 0..spec.num_elements as u32 {
            if rng.gen_bool(spec.density) {
                set.push(j);
                degree[j as usize] += 1;
                let _ = i;
            }
        }
    }
    // Patch low-degree elements into random extra sets.
    let mut order: Vec<usize> = (0..spec.num_sets).collect();
    #[allow(clippy::needless_range_loop)] // `j` also indexes `members` below
    for j in 0..spec.num_elements {
        while degree[j] < spec.min_degree {
            order.shuffle(rng);
            let target = order
                .iter()
                .copied()
                .find(|&s| !members[s].contains(&(j as u32)))
                .expect("min_degree ≤ num_sets guarantees a free set");
            members[target].push(j as u32);
            degree[j] += 1;
        }
    }
    let costs: Vec<f64> = (0..spec.num_sets)
        .map(|_| {
            if spec.max_cost <= 1 {
                1.0
            } else {
                rng.gen_range(1..=spec.max_cost) as f64
            }
        })
        .collect();
    SetSystem::new(spec.num_elements, members, costs)
}

/// A structured system: elements are partitioned into `groups` blocks;
/// each block gets `copies` identical covering sets, plus one global
/// set covering everything. OPT for one round of all elements is 1
/// (the global set) while per-block buying costs `groups` — a clean
/// gap instance for E5/E7.
pub fn structured_partition_system(num_elements: usize, groups: usize, copies: usize) -> SetSystem {
    assert!(groups >= 1 && copies >= 1 && num_elements >= groups);
    let mut members: Vec<Vec<u32>> = Vec::new();
    for g in 0..groups {
        let block: Vec<u32> = (0..num_elements as u32)
            .filter(|j| (*j as usize) % groups == g)
            .collect();
        for _ in 0..copies {
            members.push(block.clone());
        }
    }
    members.push((0..num_elements as u32).collect());
    SetSystem::unit(num_elements, members)
}

/// Arrival schedules over a set system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Uniformly random elements, each repetition independent.
    UniformRandom,
    /// Round-robin over all elements, `reps` full rounds (every element
    /// arrives exactly `reps` times).
    RoundRobin,
    /// All repetitions of one element delivered consecutively before
    /// moving on (bursty — the hardest ordering for repetition logic).
    Bursty,
}

/// Generate a feasible arrival sequence: `reps` target repetitions per
/// element, truncated at each element's degree.
pub fn random_arrivals<R: Rng>(
    system: &SetSystem,
    pattern: ArrivalPattern,
    reps: u32,
    rng: &mut R,
) -> Vec<u32> {
    let n = system.num_elements();
    let quota: Vec<u32> = (0..n as u32)
        .map(|j| reps.min(system.degree(j) as u32))
        .collect();
    match pattern {
        ArrivalPattern::RoundRobin => {
            let mut out = Vec::new();
            for round in 0..reps {
                for j in 0..n as u32 {
                    if round < quota[j as usize] {
                        out.push(j);
                    }
                }
            }
            out
        }
        ArrivalPattern::Bursty => {
            let mut elements: Vec<u32> = (0..n as u32).collect();
            elements.shuffle(rng);
            let mut out = Vec::new();
            for j in elements {
                for _ in 0..quota[j as usize] {
                    out.push(j);
                }
            }
            out
        }
        ArrivalPattern::UniformRandom => {
            // Multiset of all (element, rep) pairs, shuffled.
            let mut out: Vec<u32> = (0..n as u32)
                .flat_map(|j| std::iter::repeat_n(j, quota[j as usize] as usize))
                .collect();
            out.shuffle(rng);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_system_respects_min_degree() {
        let spec = SetSystemSpec {
            num_elements: 20,
            num_sets: 10,
            density: 0.05, // sparse: patching must kick in
            min_degree: 3,
            max_cost: 1,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let sys = random_set_system(&spec, &mut rng);
        for j in 0..20u32 {
            assert!(sys.degree(j) >= 3, "element {j} degree {}", sys.degree(j));
        }
    }

    #[test]
    fn random_system_is_deterministic() {
        let spec = SetSystemSpec::unit(15, 12);
        let a = random_set_system(&spec, &mut StdRng::seed_from_u64(2));
        let b = random_set_system(&spec, &mut StdRng::seed_from_u64(2));
        for i in 0..12u32 {
            assert_eq!(
                a.elements_of(acmr_core::setcover::SetId(i)),
                b.elements_of(acmr_core::setcover::SetId(i))
            );
        }
    }

    #[test]
    fn weighted_costs_in_range() {
        let spec = SetSystemSpec {
            max_cost: 10,
            ..SetSystemSpec::unit(10, 8)
        };
        let sys = random_set_system(&spec, &mut StdRng::seed_from_u64(3));
        for i in 0..8u32 {
            let c = sys.cost(acmr_core::setcover::SetId(i));
            assert!((1.0..=10.0).contains(&c));
        }
    }

    #[test]
    fn structured_system_shape() {
        let sys = structured_partition_system(12, 3, 2);
        // 3 groups × 2 copies + 1 global = 7 sets.
        assert_eq!(sys.num_sets(), 7);
        // Every element: 2 block copies + global = degree 3.
        for j in 0..12u32 {
            assert_eq!(sys.degree(j), 3);
        }
    }

    #[test]
    fn round_robin_counts() {
        let sys = structured_partition_system(6, 2, 2);
        let arr = random_arrivals(
            &sys,
            ArrivalPattern::RoundRobin,
            2,
            &mut StdRng::seed_from_u64(4),
        );
        assert_eq!(arr.len(), 12);
        assert!(sys.arrivals_feasible(&arr));
    }

    #[test]
    fn bursty_is_feasible_and_grouped() {
        let sys = structured_partition_system(6, 2, 3);
        let arr = random_arrivals(
            &sys,
            ArrivalPattern::Bursty,
            2,
            &mut StdRng::seed_from_u64(5),
        );
        assert!(sys.arrivals_feasible(&arr));
        // Consecutive duplicates: each element's arrivals are adjacent.
        let mut seen = std::collections::HashSet::new();
        let mut prev = u32::MAX;
        for &j in &arr {
            if j != prev {
                assert!(seen.insert(j), "element {j} appeared in two bursts");
                prev = j;
            }
        }
    }

    #[test]
    fn uniform_random_is_feasible() {
        let spec = SetSystemSpec::unit(10, 8);
        let sys = random_set_system(&spec, &mut StdRng::seed_from_u64(6));
        let arr = random_arrivals(
            &sys,
            ArrivalPattern::UniformRandom,
            3,
            &mut StdRng::seed_from_u64(7),
        );
        assert!(sys.arrivals_feasible(&arr));
    }

    #[test]
    fn quota_truncated_at_degree() {
        // Element degree can be < reps; quota must clamp.
        let sys = SetSystem::unit(2, vec![vec![0], vec![0], vec![1]]);
        let arr = random_arrivals(
            &sys,
            ArrivalPattern::RoundRobin,
            5,
            &mut StdRng::seed_from_u64(8),
        );
        let count1 = arr.iter().filter(|&&j| j == 1).count();
        assert_eq!(count1, 1); // deg(1) = 1
        assert!(sys.arrivals_feasible(&arr));
    }
}
