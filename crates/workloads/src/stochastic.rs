//! Stochastic traffic models: seeded generators shaped like production
//! load rather than an adversary.
//!
//! The paper's guarantees are worst-case, but the traffic a deployed
//! admission controller actually sees is stochastic: i.i.d. request
//! mixes, Markov-modulated demand, diurnal cycles, flash crowds,
//! heavy-tailed sessions. [`TrafficModel`] captures the arrival-rate
//! process; [`stochastic_workload`] turns it into an ordinary
//! [`AdmissionInstance`] over the existing topologies, so every
//! algorithm, writer and driver consumes it unchanged.
//!
//! Time is discretized into slots `0..duration`. In slot `t` the
//! generator draws `Poisson(λ·mult(t))` *sessions*; each session picks
//! one random path and issues a heavy-tailed (truncated-Zipf) number
//! of requests along it. `mult(t)` is normalized so the configured
//! [`StochasticSpec::arrival_rate`] is the long-run mean for every
//! model. Everything is driven by one explicit RNG: same seed, same
//! trace, byte for byte.

use crate::admission::Topology;
use crate::cost::CostModel;
use acmr_core::{AdmissionInstance, Request};
use acmr_graph::{routing, CapGraph, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One phase of a Markov-modulated ([`TrafficModel::Mmpp`]) process.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Arrival-rate multiplier while the chain sits in this phase.
    pub rate: f64,
    /// Probability of staying in this phase for another slot.
    pub stay: f64,
}

/// Arrival-rate process: how the per-slot session rate `λ(t)` evolves.
///
/// All variants are normalized so the long-run mean multiplier is 1 —
/// `arrival_rate` means the same thing under every model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Constant rate: every slot draws `Poisson(λ)` sessions.
    Iid,
    /// Markov-modulated Poisson process on a cyclic phase chain: phase
    /// `i` repeats with probability `stay_i`, otherwise the chain moves
    /// to phase `(i+1) mod k`. The cycle keeps the stationary
    /// distribution closed-form (`π_i ∝ 1/(1−stay_i)`), which is what
    /// the statistical test layer pins.
    Mmpp {
        /// The phase chain (≥ 1 phase, each `stay < 1`).
        phases: Vec<Phase>,
    },
    /// Sinusoidal day/night cycle:
    /// `mult(t) = 1 + amplitude·sin(2πt/period)`.
    Diurnal {
        /// Slots per full cycle.
        period: u32,
        /// Swing in `[0, 1)`; peak/trough ratio is `(1+a)/(1−a)`.
        amplitude: f64,
    },
    /// Flash crowds: baseline rate 1, except slots with
    /// `t mod period < width` burn at `boost×` — deterministic windows
    /// so the peak/off-peak ratio is pinnable.
    Flash {
        /// Slots between flash onsets.
        period: u32,
        /// Flash width in slots (`< period`).
        width: u32,
        /// Rate multiplier inside a flash (`> 1`).
        boost: f64,
    },
}

impl TrafficModel {
    /// A default three-phase night/day/rush chain.
    pub fn mmpp_default() -> Self {
        TrafficModel::Mmpp {
            phases: vec![
                Phase {
                    rate: 0.4,
                    stay: 0.9,
                },
                Phase {
                    rate: 1.0,
                    stay: 0.8,
                },
                Phase {
                    rate: 3.0,
                    stay: 0.6,
                },
            ],
        }
    }

    /// Stationary phase distribution of the cyclic MMPP chain
    /// (`π_i ∝ expected sojourn = 1/(1−stay_i)`); `None` for the
    /// non-Markov models.
    pub fn stationary(&self) -> Option<Vec<f64>> {
        match self {
            TrafficModel::Mmpp { phases } => {
                let w: Vec<f64> = phases.iter().map(|p| 1.0 / (1.0 - p.stay)).collect();
                let z: f64 = w.iter().sum();
                Some(w.into_iter().map(|x| x / z).collect())
            }
            _ => None,
        }
    }

    /// Long-run mean of the raw (unnormalized) multiplier.
    fn mean_multiplier(&self) -> f64 {
        match self {
            TrafficModel::Iid | TrafficModel::Diurnal { .. } => 1.0,
            TrafficModel::Mmpp { phases } => {
                let pi = self.stationary().expect("mmpp has a stationary dist");
                phases.iter().zip(&pi).map(|(p, w)| p.rate * w).sum()
            }
            TrafficModel::Flash {
                period,
                width,
                boost,
            } => {
                let (p, w) = (*period as f64, *width as f64);
                ((p - w) + boost * w) / p
            }
        }
    }

    /// Raw multiplier in slot `t` given the current MMPP phase.
    fn multiplier(&self, t: u32, phase: usize) -> f64 {
        match self {
            TrafficModel::Iid => 1.0,
            TrafficModel::Mmpp { phases } => phases[phase].rate,
            TrafficModel::Diurnal { period, amplitude } => {
                let x = 2.0 * std::f64::consts::PI * (t % period) as f64 / *period as f64;
                1.0 + amplitude * x.sin()
            }
            TrafficModel::Flash { .. } => {
                if self.is_peak(t) {
                    match self {
                        TrafficModel::Flash { boost, .. } => *boost,
                        _ => unreachable!(),
                    }
                } else {
                    1.0
                }
            }
        }
    }

    /// True iff slot `t` is inside a flash window (always `false` for
    /// the other models).
    pub fn is_peak(&self, t: u32) -> bool {
        match self {
            TrafficModel::Flash { period, width, .. } => t % period < *width,
            _ => false,
        }
    }

    /// Advance the MMPP phase chain by one slot (identity, consuming no
    /// randomness, for the other models).
    fn step<R: Rng>(&self, phase: usize, rng: &mut R) -> usize {
        match self {
            TrafficModel::Mmpp { phases } => {
                if rng.gen_range(0.0..1.0) < phases[phase].stay {
                    phase
                } else {
                    (phase + 1) % phases.len()
                }
            }
            _ => phase,
        }
    }

    /// Number of phases (1 for the non-Markov models).
    pub fn num_phases(&self) -> usize {
        match self {
            TrafficModel::Mmpp { phases } => phases.len(),
            _ => 1,
        }
    }

    fn validate(&self) {
        match self {
            TrafficModel::Iid => {}
            TrafficModel::Mmpp { phases } => {
                assert!(!phases.is_empty(), "mmpp needs at least one phase");
                for p in phases {
                    assert!((0.0..1.0).contains(&p.stay), "stay must be in [0,1)");
                    assert!(p.rate > 0.0, "phase rate must be positive");
                }
            }
            TrafficModel::Diurnal { period, amplitude } => {
                assert!(*period >= 2, "diurnal period must be >= 2");
                assert!((0.0..1.0).contains(amplitude), "amplitude in [0,1)");
            }
            TrafficModel::Flash {
                period,
                width,
                boost,
            } => {
                assert!(*width >= 1 && width < period, "flash width in [1, period)");
                assert!(*boost > 1.0, "flash boost must exceed 1");
            }
        }
    }
}

/// Specification of a stochastic workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StochasticSpec {
    /// Topology family (graphs are reused unchanged).
    pub topology: Topology,
    /// Uniform edge capacity.
    pub capacity: u32,
    /// Arrival-rate process.
    pub model: TrafficModel,
    /// Mean sessions per slot (long-run, after normalization).
    pub arrival_rate: f64,
    /// Number of time slots.
    pub duration: u32,
    /// Request-cost distribution.
    pub costs: CostModel,
    /// Maximum hops per request path.
    pub max_hops: u32,
    /// Session-size tail exponent: `P(size=k) ∝ k^(−alpha)`.
    pub session_alpha: f64,
    /// Session-size truncation (≥ 1).
    pub session_max: u32,
    /// Path-width tail exponent on the line topology: widths are drawn
    /// truncated-Zipf on `{1, …, max_hops}` (`P(w) ∝ w^(−width_alpha)`)
    /// — most flows short, occasional wide ones, the mix that makes
    /// value *density* matter. Non-line topologies ignore it (their
    /// walks are already length-diverse).
    pub width_alpha: f64,
}

impl StochasticSpec {
    /// Compact default: line topology, unit costs, single-request
    /// sessions under the given model.
    pub fn line_default(m: u32, capacity: u32, model: TrafficModel) -> Self {
        StochasticSpec {
            topology: Topology::Line { m },
            capacity,
            model,
            arrival_rate: 4.0,
            duration: 128,
            costs: CostModel::Unit,
            max_hops: 8,
            session_alpha: 2.5,
            session_max: 8,
            width_alpha: 1.3,
        }
    }
}

/// Per-slot bookkeeping returned alongside the instance — the raw
/// material for the statistical test layer.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StochasticSummary {
    /// Sessions drawn in each slot.
    pub sessions_per_slot: Vec<u32>,
    /// MMPP phase occupied in each slot (all 0 for other models).
    pub phase_per_slot: Vec<usize>,
    /// Total requests emitted.
    pub requests: usize,
}

impl StochasticSummary {
    /// Empirical mean sessions per slot.
    pub fn mean_rate(&self) -> f64 {
        if self.sessions_per_slot.is_empty() {
            return 0.0;
        }
        let total: u64 = self.sessions_per_slot.iter().map(|&x| x as u64).sum();
        total as f64 / self.sessions_per_slot.len() as f64
    }

    /// Fraction of slots spent in each of `k` phases.
    pub fn phase_occupancy(&self, k: usize) -> Vec<f64> {
        let mut counts = vec![0u64; k];
        for &p in &self.phase_per_slot {
            counts[p] += 1;
        }
        let n = self.phase_per_slot.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }

    /// Mean sessions per slot over slots selected by `pick(t)`.
    pub fn mean_rate_where<F: Fn(u32) -> bool>(&self, pick: F) -> f64 {
        let mut total = 0u64;
        let mut n = 0u64;
        for (t, &s) in self.sessions_per_slot.iter().enumerate() {
            if pick(t as u32) {
                total += s as u64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }
}

/// One `Poisson(λ)` draw (Knuth's product-of-uniforms method — exact,
/// and fast enough for per-slot rates well into the hundreds).
pub fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let floor = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= floor || k >= 100_000 {
            return k;
        }
        k += 1;
    }
}

/// Truncated-Zipf draw on `{1, …, max}` with exponent `alpha` — used
/// for both session sizes and line path widths.
fn zipf_trunc<R: Rng>(alpha: f64, max: u32, rng: &mut R) -> u32 {
    let n = max.max(1);
    if n == 1 {
        return 1;
    }
    let norm: f64 = (1..=n).map(|v| 1.0 / (v as f64).powf(alpha)).sum();
    let mut u = rng.gen_range(0.0..1.0) * norm;
    for v in 1..=n {
        u -= 1.0 / (v as f64).powf(alpha);
        if u <= 0.0 {
            return v;
        }
    }
    n
}

fn sample_path<R: Rng>(
    topology: Topology,
    g: &CapGraph,
    max_hops: u32,
    width_alpha: f64,
    rng: &mut R,
) -> Option<acmr_graph::Path> {
    match topology {
        Topology::Line { .. } => {
            // Heavy-tailed widths: most flows are short, the occasional
            // wide one spans a big interval.
            let n = g.num_nodes() as u32;
            let hops = zipf_trunc(width_alpha, max_hops.min(n - 1), rng);
            let src = rng.gen_range(0..n - hops);
            routing::bfs_path(g, NodeId(src), NodeId(src + hops))
        }
        _ => {
            let src = NodeId(rng.gen_range(0..g.num_nodes() as u32));
            routing::random_simple_path(g, src, max_hops as usize, rng)
        }
    }
}

/// Generate `(graph, instance, summary)` for a stochastic spec.
///
/// Requests arrive in slot order; within a slot, session by session.
/// All randomness comes from `rng` — the same seed reproduces the
/// instance exactly, so the text and binary writers emit byte-identical
/// traces for it.
pub fn stochastic_workload<R: Rng>(
    spec: &StochasticSpec,
    rng: &mut R,
) -> (CapGraph, AdmissionInstance, StochasticSummary) {
    spec.model.validate();
    assert!(spec.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(spec.duration >= 1, "duration must be >= 1 slot");
    let g = spec.topology.build(spec.capacity, rng);
    let mut inst = AdmissionInstance::from_graph(&g);
    let mut summary = StochasticSummary::default();
    let mean_mult = spec.model.mean_multiplier();
    let mut phase = 0usize;
    for t in 0..spec.duration {
        let lambda = spec.arrival_rate * spec.model.multiplier(t, phase) / mean_mult;
        let sessions = poisson(lambda, rng);
        summary.sessions_per_slot.push(sessions);
        summary.phase_per_slot.push(phase);
        for _ in 0..sessions {
            let size = zipf_trunc(spec.session_alpha, spec.session_max, rng);
            // A session rides one route; retry a few times if the walk
            // dead-ends (possible on sparse Gnp graphs).
            let mut path = None;
            for _ in 0..8 {
                path = sample_path(spec.topology, &g, spec.max_hops, spec.width_alpha, rng);
                if path.is_some() {
                    break;
                }
            }
            let Some(path) = path else { continue };
            for _ in 0..size {
                let cost = spec.costs.sample(rng);
                inst.push(Request::from_path(&path, cost));
            }
        }
        phase = spec.model.step(phase, rng);
    }
    summary.requests = inst.requests.len();
    (g, inst, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(3.0, &mut rng) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "poisson mean {mean}");
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(poisson(0.0, &mut rng), 0);
        assert_eq!(poisson(-1.0, &mut rng), 0);
    }

    #[test]
    fn session_sizes_heavy_on_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let sizes: Vec<u32> = (0..4000).map(|_| zipf_trunc(2.5, 8, &mut rng)).collect();
        assert!(sizes.iter().all(|&s| (1..=8).contains(&s)));
        let ones = sizes.iter().filter(|&&s| s == 1).count();
        assert!(ones > 2400, "alpha=2.5 should concentrate on 1 ({ones})");
        assert!(sizes.iter().any(|&s| s >= 4), "tail should be populated");
    }

    #[test]
    fn mmpp_stationary_is_closed_form() {
        let model = TrafficModel::Mmpp {
            phases: vec![
                Phase {
                    rate: 1.0,
                    stay: 0.95,
                },
                Phase {
                    rate: 4.0,
                    stay: 0.8,
                },
            ],
        };
        // Sojourns 20 and 5 → π = (0.8, 0.2).
        let pi = model.stationary().unwrap();
        assert!((pi[0] - 0.8).abs() < 1e-12);
        assert!((pi[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mean_multiplier_is_normalized_for_every_model() {
        for model in [
            TrafficModel::Iid,
            TrafficModel::mmpp_default(),
            TrafficModel::Diurnal {
                period: 32,
                amplitude: 0.8,
            },
            TrafficModel::Flash {
                period: 32,
                width: 4,
                boost: 6.0,
            },
        ] {
            model.validate();
            let mean = model.mean_multiplier();
            assert!(mean > 0.0);
            // After dividing by mean_multiplier the long-run average
            // multiplier is 1 by construction; spot-check flash.
            if let TrafficModel::Flash {
                period,
                width,
                boost,
            } = &model
            {
                let expected = ((*period - *width) as f64 + boost * *width as f64) / *period as f64;
                assert!((mean - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flash_peak_slots_are_deterministic() {
        let model = TrafficModel::Flash {
            period: 10,
            width: 3,
            boost: 5.0,
        };
        let peaks: Vec<u32> = (0..20).filter(|&t| model.is_peak(t)).collect();
        assert_eq!(peaks, vec![0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn workload_is_seed_deterministic() {
        let spec = StochasticSpec::line_default(16, 2, TrafficModel::mmpp_default());
        let a = stochastic_workload(&spec, &mut StdRng::seed_from_u64(7));
        let b = stochastic_workload(&spec, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.1.requests, b.1.requests);
        assert_eq!(a.2.sessions_per_slot, b.2.sessions_per_slot);
        assert_eq!(a.2.phase_per_slot, b.2.phase_per_slot);
    }

    #[test]
    fn footprints_are_valid_on_every_topology() {
        for topo in [
            Topology::Line { m: 16 },
            Topology::Tree { levels: 4 },
            Topology::Grid { rows: 3, cols: 4 },
            Topology::Gnp { n: 20, p: 0.2 },
        ] {
            let spec = StochasticSpec {
                topology: topo,
                duration: 32,
                ..StochasticSpec::line_default(16, 2, TrafficModel::Iid)
            };
            let (g, inst, summary) = stochastic_workload(&spec, &mut StdRng::seed_from_u64(5));
            assert!(!inst.requests.is_empty());
            assert_eq!(summary.requests, inst.requests.len());
            for r in &inst.requests {
                assert!(!r.footprint.is_empty());
                assert!(r.footprint.len() <= spec.max_hops as usize);
                for e in r.footprint.iter() {
                    assert!(e.index() < g.num_edges());
                }
            }
        }
    }

    #[test]
    fn sessions_repeat_the_same_route() {
        // With session_max > 1 some sessions issue several requests on
        // one path; consecutive duplicates must therefore appear.
        let spec = StochasticSpec {
            session_alpha: 1.2,
            session_max: 6,
            duration: 64,
            ..StochasticSpec::line_default(16, 2, TrafficModel::Iid)
        };
        let (_, inst, _) = stochastic_workload(&spec, &mut StdRng::seed_from_u64(3));
        let repeats = inst
            .requests
            .windows(2)
            .filter(|w| w[0].footprint == w[1].footprint)
            .count();
        assert!(repeats > 0, "heavy-tailed sessions should repeat routes");
    }
}
