//! Plain-text trace format for admission instances.
//!
//! Experiments persist generated instances so runs can be replayed and
//! diffed. The format is a deliberately simple line protocol (the
//! allowed dependency set has no serde *format* crate):
//!
//! ```text
//! ACMR-TRACE v1
//! edges 3
//! caps 2 2 1
//! requests 2
//! 1 0 1
//! 2.5 1 2
//! ```
//!
//! Request lines are `<cost> <edge>…`. Floats round-trip via Rust's
//! shortest-repr formatting, so write→read→write is idempotent.

use acmr_core::{AdmissionInstance, Request};
use acmr_graph::{EdgeId, EdgeSet};
use std::fmt::Write as _;

/// Parse failure, with the 1-based line number where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceError {}

fn err(line: usize, message: impl Into<String>) -> TraceError {
    TraceError {
        line,
        message: message.into(),
    }
}

/// Serialize an instance to the trace format.
pub fn write_trace(inst: &AdmissionInstance) -> String {
    let mut out = String::new();
    out.push_str("ACMR-TRACE v1\n");
    let _ = writeln!(out, "edges {}", inst.capacities.len());
    out.push_str("caps");
    for &c in &inst.capacities {
        let _ = write!(out, " {c}");
    }
    out.push('\n');
    let _ = writeln!(out, "requests {}", inst.requests.len());
    for r in &inst.requests {
        let _ = write!(out, "{}", r.cost);
        for e in r.footprint.iter() {
            let _ = write!(out, " {}", e.0);
        }
        out.push('\n');
    }
    out
}

/// Parse an instance from the trace format.
pub fn read_trace(text: &str) -> Result<AdmissionInstance, TraceError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (ln, header) = lines.next().ok_or_else(|| err(0, "empty trace"))?;
    if header != "ACMR-TRACE v1" {
        return Err(err(ln, format!("bad header {header:?}")));
    }
    let (ln, edges_line) = lines.next().ok_or_else(|| err(ln, "missing edges line"))?;
    let m: usize = edges_line
        .strip_prefix("edges ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(ln, "expected `edges <m>`"))?;
    let (ln, caps_line) = lines.next().ok_or_else(|| err(ln, "missing caps line"))?;
    let caps_body = caps_line
        .strip_prefix("caps")
        .ok_or_else(|| err(ln, "expected `caps …`"))?;
    let capacities: Vec<u32> = caps_body
        .split_whitespace()
        .map(|t| t.parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|e| err(ln, format!("bad capacity: {e}")))?;
    if capacities.len() != m {
        return Err(err(
            ln,
            format!("expected {m} capacities, got {}", capacities.len()),
        ));
    }
    if capacities.contains(&0) {
        return Err(err(ln, "capacities must be positive"));
    }
    let (ln, reqs_line) = lines
        .next()
        .ok_or_else(|| err(ln, "missing requests line"))?;
    let k: usize = reqs_line
        .strip_prefix("requests ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(ln, "expected `requests <k>`"))?;
    let mut inst = AdmissionInstance::from_capacities(capacities);
    for _ in 0..k {
        let (ln, line) = lines.next().ok_or_else(|| err(ln, "truncated requests"))?;
        let mut toks = line.split_whitespace();
        let cost: f64 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err(ln, "missing cost"))?;
        if !(cost > 0.0 && cost.is_finite()) {
            return Err(err(ln, format!("bad cost {cost}")));
        }
        let edges: Vec<EdgeId> = toks
            .map(|t| t.parse::<u32>().map(EdgeId))
            .collect::<Result<_, _>>()
            .map_err(|e| err(ln, format!("bad edge id: {e}")))?;
        if edges.is_empty() {
            return Err(err(ln, "request has no edges"));
        }
        if edges.iter().any(|e| e.index() >= m) {
            return Err(err(ln, "edge id out of range"));
        }
        inst.push(Request::new(EdgeSet::new(edges), cost));
    }
    if let Some((ln, extra)) = lines.find(|(_, l)| !l.is_empty()) {
        return Err(err(ln, format!("trailing content {extra:?}")));
    }
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial;

    #[test]
    fn roundtrip_identity() {
        let inst = adversarial::nested_intervals(8, 2, 2, 2);
        let text = write_trace(&inst);
        let back = read_trace(&text).unwrap();
        assert_eq!(back.capacities, inst.capacities);
        assert_eq!(back.requests, inst.requests);
        // Idempotent re-serialization.
        assert_eq!(write_trace(&back), text);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_trace("WRONG v9\n").is_err());
        assert!(read_trace("").is_err());
    }

    #[test]
    fn rejects_capacity_mismatch() {
        let e = read_trace("ACMR-TRACE v1\nedges 2\ncaps 1\nrequests 0\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(read_trace("ACMR-TRACE v1\nedges 1\ncaps 0\nrequests 0\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_edge() {
        let text = "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 1\n1 5\n";
        let e = read_trace(text).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn rejects_truncated_requests() {
        let text = "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 2\n1 0\n";
        assert!(read_trace(text).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let text = "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 0\nunexpected\n";
        assert!(read_trace(text).is_err());
    }

    #[test]
    fn float_costs_roundtrip() {
        let mut inst = AdmissionInstance::from_capacities(vec![1]);
        inst.push(Request::new(EdgeSet::singleton(EdgeId(0)), 0.1 + 0.2));
        let back = read_trace(&write_trace(&inst)).unwrap();
        assert_eq!(back.requests[0].cost, inst.requests[0].cost);
    }
}
