//! Plain-text trace format for admission instances — in-memory and
//! **streaming** (chunked, bounded-memory) readers and writers.
//!
//! Experiments persist generated instances so runs can be replayed and
//! diffed. The format is a deliberately simple line protocol (the
//! allowed dependency set has no serde *format* crate); the full
//! grammar, including the streaming chunk semantics, is specified in
//! `docs/TRACE_FORMAT.md`:
//!
//! ```text
//! ACMR-TRACE v1
//! edges 3
//! caps 2 2 1
//! requests 2
//! 1 0 1
//! 2.5 1 2
//! ```
//!
//! Request lines are `<cost> <edge>…`. Floats round-trip via Rust's
//! shortest-repr formatting, so write→read→write is idempotent.
//!
//! ## One parser, two shapes
//!
//! [`TraceReader`] is the real parser: it pulls bytes from any
//! [`std::io::Read`] in fixed-size chunks ([`CHUNK_SIZE`]), holds at
//! most one line in memory at a time (capped at [`MAX_LINE_BYTES`]),
//! and yields [`Request`]s one by one — so a trace far larger than RAM
//! streams through in bounded memory. The whole-string convenience
//! [`read_trace`] is a thin wrapper that drains a `TraceReader` over
//! the in-memory bytes, which is what guarantees the streamed and
//! in-memory paths accept byte-for-byte the same language.
//!
//! Malformed input yields a typed error ([`AcmrError::TraceParse`]
//! from the streaming reader, the equivalent [`TraceError`] from
//! `read_trace`) carrying the 1-based line number — never a panic (the
//! `trace_fuzz` suite pins this under byte-level corruption).
//!
//! Symmetrically, [`TraceWriter`] emits the format incrementally to
//! any [`std::io::Write`] — the generator side of streaming: traces
//! larger than memory can be produced request by request.
//! [`write_trace`] wraps it for in-memory use.

use acmr_core::{AcmrError, AdmissionInstance, Request};
use acmr_graph::{EdgeId, EdgeSet};
use std::io::{self, Read, Write};
use std::path::Path;

/// Bytes pulled from the underlying reader per refill.
pub const CHUNK_SIZE: usize = 64 * 1024;

/// Longest line the streaming reader accepts. The cap is what makes
/// memory *bounded* on adversarial input (a newline-free stream would
/// otherwise buffer without limit); at 16 MiB it is far above any line
/// the writer can produce for realistic footprints.
pub const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Parse failure, with the 1-based line number where it occurred.
///
/// This is the whole-string [`read_trace`] error type, kept for
/// compatibility; the streaming [`TraceReader`] reports the same
/// failures as [`AcmrError::TraceParse`] (the two convert into each
/// other losslessly).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {} (format spec: docs/TRACE_FORMAT.md)",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceError {}

impl From<TraceError> for AcmrError {
    fn from(e: TraceError) -> Self {
        AcmrError::TraceParse {
            line: e.line,
            message: e.message,
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> AcmrError {
    AcmrError::TraceParse {
        line,
        message: message.into(),
    }
}

/// Parse an `edges <m>` header line (1-based `line_no` for errors).
///
/// This and its siblings [`parse_caps_line`] / [`parse_request_line`]
/// are **the** grammar: [`TraceReader`] parses trace files through
/// them, and the `acmr-serve` wire protocol parses its handshake and
/// arrival frames through the same functions — so the socket and the
/// file speak byte-for-byte the same language.
pub fn parse_edges_line(line_no: usize, line: &str) -> Result<usize, AcmrError> {
    line.strip_prefix("edges ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| err(line_no, "expected `edges <m>`"))
}

/// Parse a `caps <c1> … <cm>` header line against the declared edge
/// count `m`: exactly `m` capacities, all ≥ 1.
pub fn parse_caps_line(line_no: usize, line: &str, m: usize) -> Result<Vec<u32>, AcmrError> {
    let caps_body = line
        .strip_prefix("caps")
        .ok_or_else(|| err(line_no, "expected `caps …`"))?;
    let capacities: Vec<u32> = caps_body
        .split_whitespace()
        .map(|t| t.parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|e| err(line_no, format!("bad capacity: {e}")))?;
    if capacities.len() != m {
        return Err(err(
            line_no,
            format!("expected {m} capacities, got {}", capacities.len()),
        ));
    }
    if capacities.contains(&0) {
        return Err(err(line_no, "capacities must be positive"));
    }
    Ok(capacities)
}

/// Parse one `<cost> <edge>…` request line against an edge universe of
/// `num_edges` edges: finite positive cost, at least one edge, every
/// edge id in range. The 1-based `line_no` is echoed in the error so a
/// multi-gigabyte trace (or a long-lived socket session) stays
/// debuggable.
pub fn parse_request_line(
    line_no: usize,
    line: &str,
    num_edges: usize,
) -> Result<Request, AcmrError> {
    let mut toks = line.split_whitespace();
    let cost: f64 = toks
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err(line_no, "missing cost"))?;
    if !(cost > 0.0 && cost.is_finite()) {
        return Err(err(line_no, format!("bad cost {cost}")));
    }
    let edges: Vec<EdgeId> = toks
        .map(|t| t.parse::<u32>().map(EdgeId))
        .collect::<Result<_, _>>()
        .map_err(|e| err(line_no, format!("bad edge id: {e}")))?;
    if edges.is_empty() {
        return Err(err(line_no, "request has no edges"));
    }
    if edges.iter().any(|e| e.index() >= num_edges) {
        return Err(err(line_no, "edge id out of range"));
    }
    Ok(Request::new(EdgeSet::new(edges), cost))
}

/// Write one `<cost> <edge>…` request line (newline included) — the
/// exact inverse of [`parse_request_line`], shared by [`TraceWriter`]
/// and the `acmr-serve` client so every producer emits the identical
/// bytes (costs in Rust's shortest round-trip `f64` repr).
pub fn write_request_line<W: Write>(sink: &mut W, r: &Request) -> io::Result<()> {
    write!(sink, "{}", r.cost)?;
    for e in r.footprint.iter() {
        write!(sink, " {}", e.0)?;
    }
    writeln!(sink)
}

/// Chunked line scanner: pulls [`CHUNK_SIZE`] bytes at a time from the
/// underlying reader and carves out `\n`-terminated lines, holding only
/// the unconsumed tail in memory (capped at a configurable line
/// length, so memory stays bounded on adversarial newline-free input).
///
/// Public because it is the one byte-level tokenizer for everything
/// that speaks the trace grammar: [`TraceReader`] runs trace files
/// through it, and `acmr-serve`'s `FrameReader` runs sockets through
/// it — one scanner, so a carving fix can never land on one side only.
pub struct LineScanner<R: Read> {
    inner: R,
    core: LineBuffer,
}

/// The pure, push-fed core of [`LineScanner`]: bytes go in via
/// [`LineBuffer::feed`] (or the zero-copy [`LineBuffer::fill_buf`] /
/// [`LineBuffer::truncate_fill`] pair), trimmed numbered lines come
/// out of [`LineBuffer::next_line`] — no reader, no I/O, no blocking.
///
/// This is the sans-I/O seam: [`LineScanner`] drives it from a
/// [`Read`] (files, blocking sockets), while `acmr-serve`'s reactor
/// drives it from nonblocking socket reads — one byte-level line
/// carver for every consumer of the trace grammar, so a carving fix
/// can never land on one side only. Semantics are exactly the
/// historical scanner's: `\n`-terminated lines, trimmed, 1-based
/// numbering, UTF-8 validation per line, the [`MAX_LINE_BYTES`]-style
/// cap enforced on any newline-free run, and a final unterminated
/// line yielded once EOF is signalled via [`LineBuffer::set_eof`].
pub struct LineBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` — compacted only right before more
    /// input lands, so carving lines out of a chunk is O(line), not
    /// O(chunk).
    start: usize,
    /// How far `buf` has already been searched for a newline, so a line
    /// spanning many refills is scanned once, not once per refill.
    scanned: usize,
    eof: bool,
    /// Lines yielded so far (so the next line is `line + 1`).
    line: usize,
    /// Longest accepted line; see [`MAX_LINE_BYTES`].
    max_line_bytes: usize,
}

impl LineBuffer {
    /// An empty buffer rejecting lines longer than `max_line_bytes`.
    pub fn new(max_line_bytes: usize) -> Self {
        LineBuffer {
            buf: Vec::new(),
            start: 0,
            scanned: 0,
            eof: false,
            line: 0,
            max_line_bytes,
        }
    }

    /// Lines yielded so far (the next line is `line_number() + 1`).
    pub fn line_number(&self) -> usize {
        self.line
    }

    /// Append input bytes (compacting the consumed prefix first).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Signal end of input: the next [`LineBuffer::next_line`] calls
    /// yield any final unterminated line, then `None` — which, with
    /// `is_eof()` true, means *exhausted* rather than *feed me more*.
    pub fn set_eof(&mut self) {
        self.eof = true;
    }

    /// Whether end of input was signalled.
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Zero-copy refill, step 1: compact, grow the buffer by `chunk`
    /// bytes, and return the writable tail for the caller to read
    /// into. Pair with [`LineBuffer::truncate_fill`].
    pub fn fill_buf(&mut self, chunk: usize) -> &mut [u8] {
        self.compact();
        let old_len = self.buf.len();
        self.buf.resize(old_len + chunk, 0);
        &mut self.buf[old_len..]
    }

    /// Zero-copy refill, step 2: drop the `unwritten` tail bytes the
    /// reader did not fill.
    pub fn truncate_fill(&mut self, unwritten: usize) {
        let new_len = self.buf.len() - unwritten;
        self.buf.truncate(new_len);
        self.scanned = self.scanned.min(new_len);
    }

    /// Whether [`LineBuffer::next_line`] can make progress without
    /// more input: a complete line is buffered, or EOF was signalled
    /// (final partial line / exhaustion). `Err` on an over-long
    /// newline-free run — the same typed cap error `next_line` raises.
    pub fn poll(&mut self) -> Result<bool, AcmrError> {
        debug_assert!(self.scanned >= self.start);
        if self.buf[self.scanned..].contains(&b'\n') {
            return Ok(true);
        }
        self.scanned = self.buf.len();
        if self.eof {
            return Ok(true);
        }
        if self.buf.len() - self.start > self.max_line_bytes {
            return Err(err(
                self.line + 1,
                format!("line exceeds {} bytes", self.max_line_bytes),
            ));
        }
        Ok(false)
    }

    /// The next line as `(1-based number, trimmed content)`, or `None`
    /// when no complete line is buffered (feed more input — unless
    /// [`LineBuffer::is_eof`], in which case the input is exhausted).
    /// The returned string borrows from the internal buffer — no
    /// allocation per line. Input that ends mid-line yields the
    /// partial line once EOF is signalled.
    pub fn next_line(&mut self) -> Result<Option<(usize, &str)>, AcmrError> {
        debug_assert!(self.scanned >= self.start);
        if let Some(off) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            let (line_start, line_end) = (self.start, self.scanned + off);
            self.start = line_end + 1;
            self.scanned = self.start;
            return self.take_line(line_start, line_end);
        }
        self.scanned = self.buf.len();
        if self.eof {
            if self.start >= self.buf.len() {
                return Ok(None);
            }
            // Final line without a trailing newline.
            let (line_start, line_end) = (self.start, self.buf.len());
            self.start = line_end;
            return self.take_line(line_start, line_end);
        }
        if self.buf.len() - self.start > self.max_line_bytes {
            return Err(err(
                self.line + 1,
                format!("line exceeds {} bytes", self.max_line_bytes),
            ));
        }
        Ok(None)
    }

    /// Take the buffered-but-unconsumed tail bytes, leaving the buffer
    /// empty — the line→binary protocol-upgrade hook (see
    /// [`LineScanner::into_parts`]).
    pub fn take_rest(&mut self) -> Vec<u8> {
        let rest = self.buf.split_off(self.start);
        self.buf.clear();
        self.start = 0;
        self.scanned = 0;
        rest
    }

    /// Drop everything already consumed so the buffer holds only the
    /// pending tail.
    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.scanned -= self.start;
            self.start = 0;
        }
    }

    fn take_line(&mut self, start: usize, end: usize) -> Result<Option<(usize, &str)>, AcmrError> {
        self.line += 1;
        let raw = std::str::from_utf8(&self.buf[start..end])
            .map_err(|_| err(self.line, "line is not valid UTF-8".to_string()))?;
        Ok(Some((self.line, raw.trim())))
    }
}

impl<R: Read> LineScanner<R> {
    /// Scan `inner` with the default [`MAX_LINE_BYTES`] cap.
    pub fn new(inner: R) -> Self {
        Self::with_max_line(inner, MAX_LINE_BYTES)
    }

    /// Scan `inner`, rejecting lines longer than `max_line_bytes`.
    pub fn with_max_line(inner: R, max_line_bytes: usize) -> Self {
        LineScanner {
            inner,
            core: LineBuffer::new(max_line_bytes),
        }
    }

    /// Lines yielded so far (the next line is `line_number() + 1`).
    pub fn line_number(&self) -> usize {
        self.core.line_number()
    }

    /// Dismantle the scanner into the bytes it has buffered but not
    /// yet yielded plus the inner reader — the protocol-upgrade hook:
    /// when a peer negotiates a binary framing mid-stream (the
    /// `ACMR-SERVE v2` `OPEN … proto=v2` handshake), any bytes the
    /// scanner read ahead of the last line belong to the *binary*
    /// stream and must be replayed in front of the raw reader, or a
    /// pipelining peer would lose its first frames.
    pub fn into_parts(mut self) -> (Vec<u8>, R) {
        (self.core.take_rest(), self.inner)
    }

    /// The next line as `(1-based number, trimmed content)`, or `None`
    /// at end of input. The returned string borrows from the scanner's
    /// buffer — no allocation per line. A source that ends mid-line
    /// yields the partial line once EOF is observed.
    pub fn next_line(&mut self) -> Result<Option<(usize, &str)>, AcmrError> {
        // The pull loop over the pure core: refill until the core can
        // carve a line (or report exhaustion) without more input.
        fn read_retrying<R: Read>(inner: &mut R, space: &mut [u8]) -> io::Result<usize> {
            loop {
                match inner.read(space) {
                    Ok(n) => return Ok(n),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
        while !self.core.poll()? {
            match read_retrying(&mut self.inner, self.core.fill_buf(CHUNK_SIZE)) {
                Ok(n) => {
                    self.core.truncate_fill(CHUNK_SIZE - n);
                    if n == 0 {
                        self.core.set_eof();
                    }
                }
                Err(e) => {
                    self.core.truncate_fill(CHUNK_SIZE);
                    return Err(e.into());
                }
            }
        }
        self.core.next_line()
    }
}

/// Incremental, bounded-memory reader for the `ACMR-TRACE v1` format.
///
/// Construction parses the header (capacities and the declared request
/// count) from the first chunk(s); [`TraceReader::next_request`] then
/// yields one [`Request`] per call without ever materializing the
/// instance. As an [`Iterator`] of `Result<Request, AcmrError>` it
/// plugs directly into `acmr_core::Session::run_stream`.
///
/// The reader validates everything the in-memory parser validates —
/// header shape, capacity count and positivity, cost positivity, edge
/// ranges, the declared request count, and the absence of trailing
/// content — and reports violations as [`AcmrError::TraceParse`] with
/// the offending 1-based line. A reader that returned an error is
/// poisoned: further calls repeat the error.
///
/// ```
/// use acmr_workloads::trace::TraceReader;
///
/// let text = "ACMR-TRACE v1\nedges 2\ncaps 1 1\nrequests 1\n2.5 0 1\n";
/// let mut reader = TraceReader::new(text.as_bytes()).unwrap();
/// assert_eq!(reader.capacities(), &[1, 1]);
/// assert_eq!(reader.declared_requests(), 1);
/// let request = reader.next_request().unwrap().unwrap();
/// assert_eq!(request.cost, 2.5);
/// assert!(reader.next_request().unwrap().is_none()); // clean EOF
/// ```
pub struct TraceReader<R: Read> {
    scan: LineScanner<R>,
    capacities: Vec<u32>,
    declared: usize,
    yielded: usize,
    /// Line number of the last line consumed (for truncation errors).
    last_line: usize,
    finished: bool,
    poison: Option<AcmrError>,
}

impl TraceReader<std::fs::File> {
    /// Open a trace file for streaming. I/O is chunked ([`CHUNK_SIZE`])
    /// by the reader itself; no buffering wrapper is needed.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, AcmrError> {
        let path = path.as_ref();
        let file = std::fs::File::open(path).map_err(|e| AcmrError::Io {
            message: format!("cannot open trace {}: {e}", path.display()),
        })?;
        TraceReader::new(file)
    }
}

impl<R: Read> TraceReader<R> {
    /// Wrap any byte source and parse the trace header.
    pub fn new(reader: R) -> Result<Self, AcmrError> {
        let mut scan = LineScanner::new(reader);
        let (ln, header) = scan.next_line()?.ok_or_else(|| err(0, "empty trace"))?;
        if header != "ACMR-TRACE v1" {
            return Err(err(ln, format!("bad header {header:?}")));
        }
        let (ln, edges_line) = scan
            .next_line()?
            .ok_or_else(|| err(ln, "missing edges line"))?;
        let m = parse_edges_line(ln, edges_line)?;
        let (ln, caps_line) = scan
            .next_line()?
            .ok_or_else(|| err(ln, "missing caps line"))?;
        let capacities = parse_caps_line(ln, caps_line, m)?;
        let (ln, reqs_line) = scan
            .next_line()?
            .ok_or_else(|| err(ln, "missing requests line"))?;
        let declared: usize = reqs_line
            .strip_prefix("requests ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(ln, "expected `requests <k>`"))?;
        Ok(TraceReader {
            scan,
            capacities,
            declared,
            yielded: 0,
            last_line: ln,
            finished: false,
            poison: None,
        })
    }

    /// Edge capacities from the header — what a `Session` over this
    /// stream must be built with.
    pub fn capacities(&self) -> &[u32] {
        &self.capacities
    }

    /// Request count declared by the header. The body is still verified
    /// against it (a short stream is a truncation error, extra content
    /// a trailing-content error).
    pub fn declared_requests(&self) -> usize {
        self.declared
    }

    /// Requests yielded so far.
    pub fn requests_read(&self) -> usize {
        self.yielded
    }

    /// Pull the next request, `Ok(None)` at a *clean* end of trace
    /// (count verified, no trailing content). After any error the
    /// reader is poisoned and repeats that error.
    pub fn next_request(&mut self) -> Result<Option<Request>, AcmrError> {
        if let Some(e) = &self.poison {
            return Err(e.clone());
        }
        match self.next_request_inner() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }

    fn next_request_inner(&mut self) -> Result<Option<Request>, AcmrError> {
        if self.finished {
            return Ok(None);
        }
        if self.yielded == self.declared {
            // Body complete: only blank lines may remain.
            while let Some((ln, line)) = self.scan.next_line()? {
                if !line.is_empty() {
                    return Err(err(ln, format!("trailing content {line:?}")));
                }
            }
            self.finished = true;
            return Ok(None);
        }
        let num_edges = self.capacities.len();
        let (ln, line) = self
            .scan
            .next_line()?
            .ok_or_else(|| err(self.last_line, "truncated requests"))?;
        self.last_line = ln;
        let request = parse_request_line(ln, line, num_edges)?;
        self.yielded += 1;
        Ok(Some(request))
    }
}

impl<R: Read> std::fmt::Debug for TraceReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReader")
            .field("edges", &self.capacities.len())
            .field("declared_requests", &self.declared)
            .field("requests_read", &self.yielded)
            .field("poisoned", &self.poison.is_some())
            .finish_non_exhaustive()
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Request, AcmrError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_request().transpose()
    }
}

impl<R: Read> acmr_core::RequestSource for TraceReader<R> {
    fn capacities(&self) -> &[u32] {
        &self.capacities
    }

    fn declared_requests(&self) -> u64 {
        self.declared as u64
    }
}

/// Incremental writer for the `ACMR-TRACE v1` format: the generator
/// side of streaming. The header is written up front, then each
/// [`TraceWriter::push`] appends one request line — so a trace of any
/// size can be produced in bounded memory. Output is byte-identical to
/// [`write_trace`] (which is implemented on top of this).
///
/// [`TraceWriter::finish`] flushes and verifies that exactly the
/// declared number of requests was written, so a crashed generator
/// cannot silently leave a short (unreadable) trace behind.
pub struct TraceWriter<W: Write> {
    sink: W,
    declared: usize,
    written: usize,
}

impl<W: Write> TraceWriter<W> {
    /// Write the header for `requests` upcoming requests over the given
    /// capacities.
    pub fn new(mut sink: W, capacities: &[u32], requests: usize) -> io::Result<Self> {
        write!(sink, "ACMR-TRACE v1\nedges {}\ncaps", capacities.len())?;
        for &c in capacities {
            write!(sink, " {c}")?;
        }
        writeln!(sink, "\nrequests {requests}")?;
        Ok(TraceWriter {
            sink,
            declared: requests,
            written: 0,
        })
    }

    /// Append one request line.
    pub fn push(&mut self, r: &Request) -> io::Result<()> {
        if self.written == self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "trace declared {} requests; push overflows it",
                    self.declared
                ),
            ));
        }
        write_request_line(&mut self.sink, r)?;
        self.written += 1;
        Ok(())
    }

    /// Flush and return the sink, verifying the declared count.
    pub fn finish(mut self) -> io::Result<W> {
        if self.written != self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace declared {} requests but only {} were written",
                    self.declared, self.written
                ),
            ));
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Serialize an instance to the trace format (in-memory convenience
/// over [`TraceWriter`]).
pub fn write_trace(inst: &AdmissionInstance) -> String {
    let mut w = TraceWriter::new(Vec::new(), &inst.capacities, inst.requests.len())
        .expect("writing to a Vec cannot fail");
    for r in &inst.requests {
        w.push(r).expect("writing to a Vec cannot fail");
    }
    String::from_utf8(w.finish().expect("declared count matches"))
        .expect("trace output is always UTF-8")
}

/// Parse an instance from the trace format (in-memory convenience over
/// [`TraceReader`], so both paths accept exactly the same language).
pub fn read_trace(text: &str) -> Result<AdmissionInstance, TraceError> {
    let demote = |e: AcmrError| match e {
        AcmrError::TraceParse { line, message } => TraceError { line, message },
        // Unreachable from an in-memory byte slice, but keep it total.
        other => TraceError {
            line: 0,
            message: other.to_string(),
        },
    };
    let mut reader = TraceReader::new(text.as_bytes()).map_err(demote)?;
    let mut inst = AdmissionInstance::from_capacities(reader.capacities().to_vec());
    while let Some(r) = reader.next_request().map_err(demote)? {
        inst.push(r);
    }
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial;

    #[test]
    fn roundtrip_identity() {
        let inst = adversarial::nested_intervals(8, 2, 2, 2);
        let text = write_trace(&inst);
        let back = read_trace(&text).unwrap();
        assert_eq!(back.capacities, inst.capacities);
        assert_eq!(back.requests, inst.requests);
        // Idempotent re-serialization.
        assert_eq!(write_trace(&back), text);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_trace("WRONG v9\n").is_err());
        assert!(read_trace("").is_err());
    }

    #[test]
    fn rejects_capacity_mismatch() {
        let e = read_trace("ACMR-TRACE v1\nedges 2\ncaps 1\nrequests 0\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(read_trace("ACMR-TRACE v1\nedges 1\ncaps 0\nrequests 0\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_edge() {
        let text = "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 1\n1 5\n";
        let e = read_trace(text).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn rejects_truncated_requests() {
        let text = "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 2\n1 0\n";
        assert!(read_trace(text).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let text = "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 0\nunexpected\n";
        assert!(read_trace(text).is_err());
    }

    #[test]
    fn float_costs_roundtrip() {
        let mut inst = AdmissionInstance::from_capacities(vec![1]);
        inst.push(Request::new(
            EdgeSet::singleton(acmr_graph::EdgeId(0)),
            0.1 + 0.2,
        ));
        let back = read_trace(&write_trace(&inst)).unwrap();
        assert_eq!(back.requests[0].cost, inst.requests[0].cost);
    }

    /// One-byte-at-a-time reader: the worst possible chunking, so any
    /// assumption about line boundaries falling inside one chunk fails.
    struct DribbleReader<'a>(&'a [u8]);
    impl Read for DribbleReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn streaming_reader_matches_in_memory_parse() {
        let inst = adversarial::nested_intervals(8, 2, 2, 2);
        let text = write_trace(&inst);
        for chunked in [false, true] {
            let collect = |text: &str| -> AdmissionInstance {
                let mut reader: Box<dyn Iterator<Item = Result<Request, AcmrError>>> = if chunked {
                    Box::new(TraceReader::new(DribbleReader(text.as_bytes())).unwrap())
                } else {
                    Box::new(TraceReader::new(text.as_bytes()).unwrap())
                };
                let mut got = AdmissionInstance::from_capacities(inst.capacities.clone());
                for r in &mut reader {
                    got.push(r.unwrap());
                }
                got
            };
            let streamed = collect(&text);
            assert_eq!(streamed.capacities, inst.capacities);
            assert_eq!(streamed.requests, inst.requests);
        }
    }

    #[test]
    fn streaming_reader_reports_header_metadata() {
        let text = "ACMR-TRACE v1\nedges 3\ncaps 4 5 6\nrequests 2\n1 0\n2 1 2\n";
        let mut reader = TraceReader::new(text.as_bytes()).unwrap();
        assert_eq!(reader.capacities(), &[4, 5, 6]);
        assert_eq!(reader.declared_requests(), 2);
        assert_eq!(reader.requests_read(), 0);
        reader.next_request().unwrap().unwrap();
        assert_eq!(reader.requests_read(), 1);
    }

    #[test]
    fn streaming_reader_poisons_after_error() {
        let text = "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 2\n1 0\nbad 0\n";
        let mut reader = TraceReader::new(text.as_bytes()).unwrap();
        assert!(reader.next_request().unwrap().is_some());
        let e1 = reader.next_request().unwrap_err();
        let e2 = reader.next_request().unwrap_err();
        assert_eq!(e1, e2, "poisoned reader must repeat its error");
        assert!(matches!(e1, AcmrError::TraceParse { line: 6, .. }));
    }

    #[test]
    fn streaming_reader_surfaces_io_errors() {
        struct FailingReader;
        impl Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "boom"))
            }
        }
        let e = TraceReader::new(FailingReader).unwrap_err();
        assert!(matches!(&e, AcmrError::Io { message } if message.contains("boom")));
        let e = TraceReader::open("/nonexistent/definitely-missing.trace").unwrap_err();
        assert!(matches!(&e, AcmrError::Io { message } if message.contains("missing.trace")));
    }

    #[test]
    fn final_line_without_newline_parses() {
        let text = "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 1\n1 0";
        let inst = read_trace(text).unwrap();
        assert_eq!(inst.requests.len(), 1);
    }

    #[test]
    fn trace_writer_enforces_declared_count() {
        let mut w = TraceWriter::new(Vec::new(), &[1], 2).unwrap();
        let r = Request::unit(EdgeSet::singleton(EdgeId(0)));
        w.push(&r).unwrap();
        // Short: finish refuses.
        assert!(w.finish().is_err());
        // Overflow: the extra push refuses.
        let mut w = TraceWriter::new(Vec::new(), &[1], 1).unwrap();
        w.push(&r).unwrap();
        assert!(w.push(&r).is_err());
        let bytes = w.finish().unwrap();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            "ACMR-TRACE v1\nedges 1\ncaps 1\nrequests 1\n1 0\n"
        );
    }

    #[test]
    fn shared_grammar_helpers_agree_with_reader() {
        // The standalone line parsers (shared with the serve wire
        // protocol) accept exactly what the reader accepts.
        assert_eq!(parse_edges_line(2, "edges 3").unwrap(), 3);
        assert!(parse_edges_line(2, "edges three").is_err());
        assert_eq!(parse_caps_line(3, "caps 1 2 3", 3).unwrap(), vec![1, 2, 3]);
        assert!(parse_caps_line(3, "caps 1 2", 3).is_err());
        assert!(parse_caps_line(3, "caps 0 2 3", 3).is_err());
        let r = parse_request_line(5, "2.5 0 1", 2).unwrap();
        assert_eq!(r.cost, 2.5);
        assert!(parse_request_line(5, "2.5 0 7", 2).is_err());
        assert!(parse_request_line(5, "nan 0", 2).is_err());
        // write_request_line is the exact inverse (newline included).
        let mut line = Vec::new();
        write_request_line(&mut line, &r).unwrap();
        assert_eq!(String::from_utf8(line).unwrap(), "2.5 0 1\n");
        // Line numbers thread through to the typed error.
        let e = parse_request_line(41, "bad", 2).unwrap_err();
        assert!(matches!(e, AcmrError::TraceParse { line: 41, .. }), "{e}");
    }

    #[test]
    fn error_display_points_at_format_spec() {
        let e = read_trace("nope").unwrap_err();
        assert!(e.to_string().contains("docs/TRACE_FORMAT.md"), "{e}");
        let acmr: AcmrError = e.into();
        assert!(acmr.to_string().contains("docs/TRACE_FORMAT.md"));
    }
}
