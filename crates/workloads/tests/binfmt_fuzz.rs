//! Fuzz-style property tests for the binary `ACMR-TRACE v2` subsystem:
//! arbitrary bytes never panic either reader, corrupting or truncating
//! any byte of a valid trace yields a typed error (or a still-valid
//! replay) and never an out-of-bounds access, the streaming and mapped
//! readers always agree with each other, and structured round-trips
//! are lossless and bit-exact.

use acmr_core::{AcmrError, AdmissionInstance, Request};
use acmr_graph::{EdgeId, EdgeSet};
use acmr_workloads::trace::{read_trace, write_trace};
use acmr_workloads::{read_bin_trace, write_bin_trace, BinTraceMap, BinTraceReader};
use proptest::prelude::*;

/// A canonical valid binary trace the corruption tests mutate:
/// 2 edges (caps 2, 1), 2 requests.
fn valid_bytes() -> Vec<u8> {
    let mut inst = AdmissionInstance::from_capacities(vec![2, 1]);
    inst.push(Request::new(EdgeSet::new(vec![EdgeId(0), EdgeId(1)]), 1.0));
    inst.push(Request::new(EdgeSet::singleton(EdgeId(1)), 2.5));
    write_bin_trace(&inst)
}

/// Drain the streaming reader, asserting every failure is one of the
/// typed trace errors (panic on anything untyped). Returns the number
/// of requests yielded.
fn drain_streamed(bytes: &[u8]) -> Result<usize, ()> {
    let mut reader = match BinTraceReader::new(bytes) {
        Ok(r) => r,
        Err(AcmrError::TraceParse { .. }) | Err(AcmrError::Io { .. }) => return Err(()),
        Err(other) => panic!("untyped header failure: {other:?}"),
    };
    let mut n = 0;
    loop {
        match reader.next() {
            Some(Ok(_)) => n += 1,
            None => return Ok(n),
            Some(Err(AcmrError::TraceParse { .. })) | Some(Err(AcmrError::Io { .. })) => {
                return Err(())
            }
            Some(Err(other)) => panic!("untyped stream failure: {other:?}"),
        }
    }
}

/// [`drain_streamed`] through the mapped (zero-copy cursor) path.
fn drain_mapped(bytes: &[u8]) -> Result<usize, ()> {
    let map = match BinTraceMap::from_bytes(bytes.to_vec()) {
        Ok(m) => m,
        Err(AcmrError::TraceParse { .. }) | Err(AcmrError::Io { .. }) => return Err(()),
        Err(other) => panic!("untyped header failure: {other:?}"),
    };
    let mut n = 0;
    for item in map.into_reader() {
        match item {
            Ok(_) => n += 1,
            Err(AcmrError::TraceParse { .. }) | Err(AcmrError::Io { .. }) => return Err(()),
            Err(other) => panic!("untyped cursor failure: {other:?}"),
        }
    }
    Ok(n)
}

#[test]
fn baseline_valid_trace_replays_through_both_readers() {
    let bytes = valid_bytes();
    assert_eq!(drain_streamed(&bytes), Ok(2));
    assert_eq!(drain_mapped(&bytes), Ok(2));
}

proptest! {
    /// Arbitrary bytes: both readers return Ok or a typed Err, never
    /// panic, never read out of bounds.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..300)) {
        prop_assert_eq!(drain_streamed(&bytes), drain_mapped(&bytes));
    }

    /// Arbitrary bytes stamped with a valid magic + version, so the
    /// fuzz pressure lands on the header fields and record decoding
    /// instead of being rejected at the magic check.
    #[test]
    fn hostile_headers_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..300)) {
        let mut stamped = b"ACMRTRCB\x02\x00\x00\x00".to_vec();
        stamped.extend_from_slice(&bytes);
        prop_assert_eq!(drain_streamed(&stamped), drain_mapped(&stamped));
    }

    /// Corrupting any single byte of a valid trace: typed error or a
    /// still-valid replay (some corruptions are benign — e.g. a
    /// different cost bit), and the streaming and mapped readers agree
    /// exactly — same validity, same yielded count.
    #[test]
    fn corrupting_any_byte_keeps_both_readers_typed_and_agreeing(
        pos in 0usize..64, // valid_bytes() is 64 bytes; pinned below
        byte in 0u8..=255u8,
    ) {
        let mut bytes = valid_bytes();
        prop_assert_eq!(bytes.len(), 64);
        bytes[pos] = byte;
        prop_assert_eq!(drain_streamed(&bytes), drain_mapped(&bytes));
    }

    /// Truncating a valid trace at any byte: typed error or a clean
    /// EOF, with both readers agreeing (truncation mid-header and
    /// mid-record must both be caught; only declared-count==yielded
    /// with no trailing bytes may pass).
    #[test]
    fn truncating_anywhere_keeps_both_readers_typed_and_agreeing(len in 0usize..64) {
        let bytes = valid_bytes();
        let cut = &bytes[..len.min(bytes.len())];
        let streamed = drain_streamed(cut);
        prop_assert_eq!(streamed, drain_mapped(cut));
        // A strict prefix can never replay the full declared body.
        prop_assert!(streamed.is_err());
    }

    /// Structured round-trip: any valid instance survives
    /// write → read → write bit-identically through the binary format,
    /// and the text and binary encodings decode to the same instance.
    #[test]
    fn roundtrip_lossless_and_equivalent_to_text(
        caps in proptest::collection::vec(1u32..9, 1..6),
        reqs in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 1..4), 1u32..1000),
            0..20,
        ),
    ) {
        let m = caps.len();
        let mut inst = AdmissionInstance::from_capacities(caps);
        for (edges, cost) in reqs {
            let edges: Vec<EdgeId> = edges.into_iter().map(|e| EdgeId((e % m) as u32)).collect();
            inst.push(Request::new(EdgeSet::new(edges), cost as f64));
        }
        let bytes = write_bin_trace(&inst);
        let back = read_bin_trace(&bytes).unwrap();
        prop_assert_eq!(&back.capacities, &inst.capacities);
        prop_assert_eq!(&back.requests, &inst.requests);
        prop_assert_eq!(write_bin_trace(&back), bytes);
        // The two dialects are views of the same instance.
        let via_text = read_trace(&write_trace(&inst)).unwrap();
        prop_assert_eq!(&via_text.requests, &back.requests);
        // The mapped reader yields the identical request sequence.
        let mapped: Vec<Request> = BinTraceMap::from_bytes(bytes)
            .unwrap()
            .into_reader()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(&mapped, &inst.requests);
    }
}
