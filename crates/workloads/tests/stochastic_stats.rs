//! Statistical test layer for the stochastic generators.
//!
//! Generators that are "probably right" rot silently; these tests pin
//! the distributions themselves. Seeds are fixed, so every assertion is
//! deterministic — tolerances cover sampling noise at the chosen sizes,
//! not flakiness.

use acmr_workloads::stochastic::{
    poisson, stochastic_workload, Phase, StochasticSpec, StochasticSummary, TrafficModel,
};
use acmr_workloads::trace::{read_trace, write_trace};
use acmr_workloads::{read_bin_trace, write_bin_trace, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gen(spec: &StochasticSpec, seed: u64) -> (acmr_core::AdmissionInstance, StochasticSummary) {
    let (_, inst, summary) = stochastic_workload(spec, &mut StdRng::seed_from_u64(seed));
    (inst, summary)
}

fn all_models() -> Vec<(&'static str, TrafficModel)> {
    vec![
        ("iid", TrafficModel::Iid),
        ("mmpp", TrafficModel::mmpp_default()),
        (
            "diurnal",
            TrafficModel::Diurnal {
                period: 64,
                amplitude: 0.8,
            },
        ),
        (
            "flash",
            TrafficModel::Flash {
                period: 64,
                width: 8,
                boost: 6.0,
            },
        ),
    ]
}

// ---------------------------------------------------------------
// Seeded determinism: same seed → byte-identical trace, text AND
// binary, for every model.
// ---------------------------------------------------------------

#[test]
fn same_seed_is_byte_identical_text_and_binary() {
    for (name, model) in all_models() {
        let spec = StochasticSpec {
            duration: 64,
            ..StochasticSpec::line_default(24, 3, model)
        };
        let (a, _) = gen(&spec, 42);
        let (b, _) = gen(&spec, 42);
        assert_eq!(
            write_trace(&a),
            write_trace(&b),
            "{name}: text dialect must be byte-identical for one seed"
        );
        assert_eq!(
            write_bin_trace(&a),
            write_bin_trace(&b),
            "{name}: binary dialect must be byte-identical for one seed"
        );
        // And both dialects round-trip the same instance.
        assert_eq!(read_trace(&write_trace(&a)).unwrap().requests, a.requests);
        assert_eq!(
            read_bin_trace(&write_bin_trace(&a)).unwrap().requests,
            a.requests
        );
    }
}

#[test]
fn different_seeds_differ() {
    let spec = StochasticSpec::line_default(24, 3, TrafficModel::Iid);
    let (a, _) = gen(&spec, 1);
    let (b, _) = gen(&spec, 2);
    assert_ne!(write_trace(&a), write_trace(&b));
}

// ---------------------------------------------------------------
// Empirical arrival rate within tolerance of the configured rate.
// ---------------------------------------------------------------

#[test]
fn empirical_arrival_rate_matches_configuration() {
    // λ = 5 over 4000 slots → sd of the mean ≈ √(5/4000) ≈ 0.035;
    // a 5% relative tolerance is ~7 sd under iid. The modulated models
    // have larger variance, so they get 10%.
    for (name, model) in all_models() {
        let tolerance = if matches!(model, TrafficModel::Iid) {
            0.05
        } else {
            0.10
        };
        let spec = StochasticSpec {
            arrival_rate: 5.0,
            duration: 4000,
            ..StochasticSpec::line_default(16, 2, model)
        };
        let (_, summary) = gen(&spec, 1234);
        let mean = summary.mean_rate();
        let rel = (mean - 5.0).abs() / 5.0;
        assert!(
            rel < tolerance,
            "{name}: empirical rate {mean:.3} vs configured 5.0 (rel err {rel:.3})"
        );
    }
}

// ---------------------------------------------------------------
// MMPP phase occupancy matches the closed-form stationary
// distribution of the cyclic chain.
// ---------------------------------------------------------------

#[test]
fn mmpp_occupancy_matches_stationary_distribution() {
    let model = TrafficModel::Mmpp {
        phases: vec![
            Phase {
                rate: 0.5,
                stay: 0.95,
            },
            Phase {
                rate: 2.0,
                stay: 0.80,
            },
        ],
    };
    // Sojourns 20 and 5 → π = (0.8, 0.2).
    let pi = model.stationary().unwrap();
    assert!((pi[0] - 0.8).abs() < 1e-12 && (pi[1] - 0.2).abs() < 1e-12);
    let spec = StochasticSpec {
        duration: 6000,
        ..StochasticSpec::line_default(16, 2, model)
    };
    let (_, summary) = gen(&spec, 77);
    let occ = summary.phase_occupancy(2);
    for (i, (&got, &want)) in occ.iter().zip(&pi).enumerate() {
        assert!(
            (got - want).abs() < 0.05,
            "phase {i}: occupancy {got:.3} vs stationary {want:.3}"
        );
    }
}

#[test]
fn mmpp_three_phase_occupancy() {
    let model = TrafficModel::mmpp_default();
    let pi = model.stationary().unwrap();
    let spec = StochasticSpec {
        duration: 8000,
        ..StochasticSpec::line_default(16, 2, model)
    };
    let (_, summary) = gen(&spec, 99);
    let occ = summary.phase_occupancy(3);
    for (i, (&got, &want)) in occ.iter().zip(&pi).enumerate() {
        assert!(
            (got - want).abs() < 0.05,
            "phase {i}: occupancy {got:.3} vs stationary {want:.3}"
        );
    }
}

// ---------------------------------------------------------------
// Flash crowds: the peak/off-peak rate ratio is pinned to the
// configured boost.
// ---------------------------------------------------------------

#[test]
fn flash_peak_to_offpeak_ratio_is_pinned() {
    let model = TrafficModel::Flash {
        period: 50,
        width: 5,
        boost: 6.0,
    };
    let spec = StochasticSpec {
        arrival_rate: 4.0,
        duration: 5000,
        ..StochasticSpec::line_default(16, 2, model.clone())
    };
    let (_, summary) = gen(&spec, 2024);
    let peak = summary.mean_rate_where(|t| model.is_peak(t));
    let off = summary.mean_rate_where(|t| !model.is_peak(t));
    let ratio = peak / off;
    assert!(
        (ratio - 6.0).abs() < 0.6,
        "peak {peak:.2} / off-peak {off:.2} = {ratio:.2}, configured boost 6"
    );
    // Normalization holds: the blended mean still matches arrival_rate.
    let rel = (summary.mean_rate() - 4.0).abs() / 4.0;
    assert!(rel < 0.1, "blended rate off by {rel:.3}");
}

#[test]
fn diurnal_peak_beats_trough() {
    let model = TrafficModel::Diurnal {
        period: 100,
        amplitude: 0.8,
    };
    let spec = StochasticSpec {
        arrival_rate: 6.0,
        duration: 5000,
        ..StochasticSpec::line_default(16, 2, model)
    };
    let (_, summary) = gen(&spec, 5150);
    // sin > 0 on the first half-period, < 0 on the second.
    let day = summary.mean_rate_where(|t| t % 100 < 50);
    let night = summary.mean_rate_where(|t| t % 100 >= 50);
    assert!(
        day > 1.5 * night,
        "diurnal cycle should be visible: day {day:.2} vs night {night:.2}"
    );
}

// ---------------------------------------------------------------
// Heavy-tailed sessions + Poisson sanity at the integration level.
// ---------------------------------------------------------------

#[test]
fn poisson_variance_matches_mean() {
    // For Poisson, mean = variance. 20k draws at λ=4: sd of the
    // variance estimate ≈ 0.08, so ±0.4 is ~5 sd.
    let mut rng = StdRng::seed_from_u64(8);
    let draws: Vec<f64> = (0..20_000).map(|_| poisson(4.0, &mut rng) as f64).collect();
    let mean = draws.iter().sum::<f64>() / draws.len() as f64;
    let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws.len() as f64;
    assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    assert!((var - 4.0).abs() < 0.4, "variance {var}");
}

#[test]
fn heavy_tailed_sessions_inflate_requests_per_session() {
    let single = StochasticSpec {
        session_max: 1,
        duration: 1000,
        ..StochasticSpec::line_default(16, 2, TrafficModel::Iid)
    };
    let tailed = StochasticSpec {
        session_alpha: 1.5,
        session_max: 16,
        ..single.clone()
    };
    let (_, s1) = gen(&single, 3);
    let (_, s2) = gen(&tailed, 3);
    let sessions1: u64 = s1.sessions_per_slot.iter().map(|&x| x as u64).sum();
    let sessions2: u64 = s2.sessions_per_slot.iter().map(|&x| x as u64).sum();
    let rps1 = s1.requests as f64 / sessions1 as f64;
    let rps2 = s2.requests as f64 / sessions2 as f64;
    assert!((rps1 - 1.0).abs() < 1e-12, "session_max=1 → 1 req/session");
    assert!(
        rps2 > 1.3,
        "heavy tail should lift requests/session ({rps2:.2})"
    );
}

#[test]
fn generation_works_on_nonline_topologies() {
    for topo in [
        Topology::Tree { levels: 4 },
        Topology::Grid { rows: 4, cols: 4 },
        Topology::Gnp { n: 24, p: 0.2 },
    ] {
        let spec = StochasticSpec {
            topology: topo,
            duration: 64,
            ..StochasticSpec::line_default(16, 2, TrafficModel::mmpp_default())
        };
        let (inst, summary) = gen(&spec, 12);
        assert!(!inst.requests.is_empty());
        assert_eq!(summary.requests, inst.requests.len());
        // Both writers accept the instance.
        assert!(!write_trace(&inst).is_empty());
        assert!(!write_bin_trace(&inst).is_empty());
    }
}
