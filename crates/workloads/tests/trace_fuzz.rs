//! Fuzz-style property tests for the trace parser: arbitrary input
//! never panics, and structured round-trips are lossless.

use acmr_core::{AdmissionInstance, Request};
use acmr_graph::{EdgeId, EdgeSet};
use acmr_workloads::trace::{read_trace, write_trace};
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes: the parser returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics(input in ".{0,400}") {
        let _ = read_trace(&input);
    }

    /// Arbitrary *line-shaped* garbage built from plausible tokens.
    #[test]
    fn structured_garbage_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("ACMR-TRACE v1".to_string()),
                Just("edges 3".to_string()),
                Just("caps 1 2 3".to_string()),
                Just("requests 2".to_string()),
                Just("1 0 1".to_string()),
                Just("-5 99".to_string()),
                Just("nan 0".to_string()),
                Just("".to_string()),
            ],
            0..12,
        )
    ) {
        let _ = read_trace(&lines.join("\n"));
    }

    /// Structured round-trip: any valid instance survives
    /// write → read → write byte-identically.
    #[test]
    fn roundtrip_lossless(
        caps in proptest::collection::vec(1u32..9, 1..6),
        reqs in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 1..4), 1u32..1000),
            0..20,
        ),
    ) {
        let m = caps.len();
        let mut inst = AdmissionInstance::from_capacities(caps);
        for (edges, cost) in reqs {
            let edges: Vec<EdgeId> = edges.into_iter().map(|e| EdgeId((e % m) as u32)).collect();
            inst.push(Request::new(EdgeSet::new(edges), cost as f64));
        }
        let text = write_trace(&inst);
        let back = read_trace(&text).unwrap();
        prop_assert_eq!(&back.capacities, &inst.capacities);
        prop_assert_eq!(&back.requests, &inst.requests);
        prop_assert_eq!(write_trace(&back), text);
    }
}
