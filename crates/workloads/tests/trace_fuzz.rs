//! Fuzz-style property tests for the trace parser — in-memory and
//! streaming: arbitrary input never panics, corrupting or truncating
//! any byte of a valid trace yields a typed error (or a still-valid
//! parse) rather than a panic, and structured round-trips are
//! lossless.

use acmr_core::{
    AcmrError, AdmissionInstance, OnlineAdmission, Outcome, Request, RequestId, Session,
};
use acmr_graph::{EdgeId, EdgeSet};
use acmr_workloads::trace::{read_trace, write_trace, TraceError, TraceReader};
use proptest::prelude::*;

/// A canonical valid trace the malformed-input tests mutate.
const VALID: &str = "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 2\n1 0 1\n2.5 1\n";

#[test]
fn malformed_inputs_yield_typed_errors_not_panics() {
    // Baseline: the canonical trace parses.
    assert!(read_trace(VALID).is_ok());

    // (input, what the typed error must mention)
    let cases: &[(&str, &str)] = &[
        // Truncated header / truncated sections.
        ("", "empty trace"),
        ("ACMR-TRACE", "bad header"),
        ("ACMR-TRACE v1", "missing edges line"),
        ("ACMR-TRACE v1\nedges 2", "missing caps line"),
        ("ACMR-TRACE v1\nedges 2\ncaps 2 1", "missing requests line"),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 2\n1 0 1\n",
            "truncated requests",
        ),
        // Non-numeric fields.
        (
            "ACMR-TRACE v1\nedges two\ncaps 2 1\nrequests 0\n",
            "expected `edges <m>`",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 one\nrequests 0\n",
            "bad capacity",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 1\nfree 0\n",
            "missing cost",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 1\nnan 0\n",
            "bad cost",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 1\n-1 0\n",
            "bad cost",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 1\n1 x\n",
            "bad edge id",
        ),
        // Structurally invalid values.
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 1\n1 5\n",
            "out of range",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2\nrequests 0\n",
            "expected 2 capacities",
        ),
        (
            "ACMR-TRACE v1\nedges 1\ncaps 0\nrequests 0\n",
            "must be positive",
        ),
        (
            "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 1\n1\n",
            "no edges",
        ),
        (
            "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 0\nextra\n",
            "trailing content",
        ),
    ];
    for (input, needle) in cases {
        let err: TraceError = read_trace(input).expect_err(&format!("accepted {input:?}"));
        assert!(
            err.message.contains(needle),
            "input {input:?}: error {:?} does not mention {needle:?}",
            err.message
        );
        assert!(
            err.line <= input.lines().count() + 1,
            "line {} absurd",
            err.line
        );
        // Display form carries the line number for operators.
        assert!(err.to_string().contains("trace parse error at line"));
    }
}

/// Drain a streaming reader, asserting every failure is one of the two
/// typed trace errors (in-memory byte sources cannot produce `Io`, but
/// the contract allows it). Returns the number of requests yielded.
fn drain_typed(bytes: &[u8]) -> Result<usize, ()> {
    let mut reader = match TraceReader::new(bytes) {
        Ok(r) => r,
        Err(AcmrError::TraceParse { .. }) | Err(AcmrError::Io { .. }) => return Err(()),
        Err(other) => panic!("untyped header failure: {other:?}"),
    };
    let mut n = 0;
    loop {
        match reader.next_request() {
            Ok(Some(_)) => n += 1,
            Ok(None) => return Ok(n),
            Err(AcmrError::TraceParse { .. }) | Err(AcmrError::Io { .. }) => return Err(()),
            Err(other) => panic!("untyped stream failure: {other:?}"),
        }
    }
}

/// Rejects everything — a trivially contract-safe algorithm for
/// driving sessions off trace streams in these tests.
struct RejectAll;
impl OnlineAdmission for RejectAll {
    fn name(&self) -> &'static str {
        "reject-all"
    }
    fn on_request(&mut self, _id: RequestId, _r: &Request) -> Outcome {
        Outcome::reject()
    }
}

#[test]
fn eof_mid_batch_surfaces_typed_error_with_chunk_semantics() {
    // VALID declares 2 requests; cut the stream right after the first
    // request line so the reader hits EOF with the body short.
    let cut = VALID.find("2.5").unwrap();
    let truncated = &VALID.as_bytes()[..cut];
    let probe = TraceReader::new(truncated).unwrap();
    let caps = probe.capacities().to_vec();

    // Batch larger than the stream: EOF arrives mid-batch, the typed
    // error surfaces, and the partial chunk was never shown to the
    // algorithm (all-or-nothing chunk semantics).
    let mut session = Session::new(RejectAll, &caps);
    let err = session
        .run_stream_batched(TraceReader::new(truncated).unwrap(), 8)
        .unwrap_err();
    assert!(
        matches!(err, AcmrError::TraceParse { line: 5, ref message } if message.contains("truncated")),
        "{err}"
    );
    assert_eq!(session.stats().arrivals, 0, "partial chunk must not apply");

    // Batch 1: the complete first chunk stays applied, then the error.
    let mut session = Session::new(RejectAll, &caps);
    let err = session
        .run_stream_batched(TraceReader::new(truncated).unwrap(), 1)
        .unwrap_err();
    assert!(matches!(err, AcmrError::TraceParse { .. }), "{err}");
    assert_eq!(session.stats().arrivals, 1, "complete chunks stay applied");

    // Same stream through per-push run_stream: prefix applied, typed
    // error, session not poisoned (the source failed, not the algorithm).
    let mut session = Session::new(RejectAll, &caps);
    let err = session
        .run_stream(TraceReader::new(truncated).unwrap())
        .unwrap_err();
    assert!(matches!(err, AcmrError::TraceParse { .. }), "{err}");
    assert_eq!(session.stats().arrivals, 1);
    assert!(!session.is_poisoned());
}

proptest! {
    /// Arbitrary bytes: the parser returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics(input in ".{0,400}") {
        let _ = read_trace(&input);
    }

    /// Corrupting any single byte of a valid trace: the streaming
    /// reader either still parses cleanly (some corruptions are benign
    /// — e.g. a different cost digit) or yields a **typed** error,
    /// never a panic; and it always agrees with the in-memory parser
    /// on validity.
    #[test]
    fn corrupting_any_byte_yields_typed_errors_from_the_streaming_reader(
        pos in 0usize..VALID.len(),
        byte in 0u8..=255u8,
    ) {
        let mut bytes = VALID.as_bytes().to_vec();
        bytes[pos] = byte;
        let streamed = drain_typed(&bytes);
        match std::str::from_utf8(&bytes) {
            Ok(text) => prop_assert_eq!(
                streamed.is_ok(),
                read_trace(text).is_ok(),
                "streamed and in-memory parsers disagree on {:?}", text
            ),
            // Invalid UTF-8 is only expressible through the byte-level
            // reader; it must be a typed error there.
            Err(_) => prop_assert!(streamed.is_err()),
        }
    }

    /// Truncating a valid trace at any byte: typed error or a clean
    /// parse of a prefix (cutting exactly at a request boundary can
    /// leave a shorter trace that only fails the declared count).
    #[test]
    fn truncation_yields_typed_errors(len in 0usize..VALID.len()) {
        let _ = drain_typed(&VALID.as_bytes()[..len]);
    }

    /// Arbitrary *line-shaped* garbage built from plausible tokens.
    #[test]
    fn structured_garbage_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("ACMR-TRACE v1".to_string()),
                Just("edges 3".to_string()),
                Just("caps 1 2 3".to_string()),
                Just("requests 2".to_string()),
                Just("1 0 1".to_string()),
                Just("-5 99".to_string()),
                Just("nan 0".to_string()),
                Just("".to_string()),
            ],
            0..12,
        )
    ) {
        let _ = read_trace(&lines.join("\n"));
    }

    /// Structured round-trip: any valid instance survives
    /// write → read → write byte-identically.
    #[test]
    fn roundtrip_lossless(
        caps in proptest::collection::vec(1u32..9, 1..6),
        reqs in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 1..4), 1u32..1000),
            0..20,
        ),
    ) {
        let m = caps.len();
        let mut inst = AdmissionInstance::from_capacities(caps);
        for (edges, cost) in reqs {
            let edges: Vec<EdgeId> = edges.into_iter().map(|e| EdgeId((e % m) as u32)).collect();
            inst.push(Request::new(EdgeSet::new(edges), cost as f64));
        }
        let text = write_trace(&inst);
        let back = read_trace(&text).unwrap();
        prop_assert_eq!(&back.capacities, &inst.capacities);
        prop_assert_eq!(&back.requests, &inst.requests);
        prop_assert_eq!(write_trace(&back), text);
    }
}
