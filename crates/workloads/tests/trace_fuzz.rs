//! Fuzz-style property tests for the trace parser: arbitrary input
//! never panics, and structured round-trips are lossless.

use acmr_core::{AdmissionInstance, Request};
use acmr_graph::{EdgeId, EdgeSet};
use acmr_workloads::trace::{read_trace, write_trace, TraceError};
use proptest::prelude::*;

/// A canonical valid trace the malformed-input tests mutate.
const VALID: &str = "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 2\n1 0 1\n2.5 1\n";

#[test]
fn malformed_inputs_yield_typed_errors_not_panics() {
    // Baseline: the canonical trace parses.
    assert!(read_trace(VALID).is_ok());

    // (input, what the typed error must mention)
    let cases: &[(&str, &str)] = &[
        // Truncated header / truncated sections.
        ("", "empty trace"),
        ("ACMR-TRACE", "bad header"),
        ("ACMR-TRACE v1", "missing edges line"),
        ("ACMR-TRACE v1\nedges 2", "missing caps line"),
        ("ACMR-TRACE v1\nedges 2\ncaps 2 1", "missing requests line"),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 2\n1 0 1\n",
            "truncated requests",
        ),
        // Non-numeric fields.
        (
            "ACMR-TRACE v1\nedges two\ncaps 2 1\nrequests 0\n",
            "expected `edges <m>`",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 one\nrequests 0\n",
            "bad capacity",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 1\nfree 0\n",
            "missing cost",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 1\nnan 0\n",
            "bad cost",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 1\n-1 0\n",
            "bad cost",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 1\n1 x\n",
            "bad edge id",
        ),
        // Structurally invalid values.
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2 1\nrequests 1\n1 5\n",
            "out of range",
        ),
        (
            "ACMR-TRACE v1\nedges 2\ncaps 2\nrequests 0\n",
            "expected 2 capacities",
        ),
        (
            "ACMR-TRACE v1\nedges 1\ncaps 0\nrequests 0\n",
            "must be positive",
        ),
        (
            "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 1\n1\n",
            "no edges",
        ),
        (
            "ACMR-TRACE v1\nedges 1\ncaps 2\nrequests 0\nextra\n",
            "trailing content",
        ),
    ];
    for (input, needle) in cases {
        let err: TraceError = read_trace(input).expect_err(&format!("accepted {input:?}"));
        assert!(
            err.message.contains(needle),
            "input {input:?}: error {:?} does not mention {needle:?}",
            err.message
        );
        assert!(
            err.line <= input.lines().count() + 1,
            "line {} absurd",
            err.line
        );
        // Display form carries the line number for operators.
        assert!(err.to_string().contains("trace parse error at line"));
    }
}

proptest! {
    /// Arbitrary bytes: the parser returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics(input in ".{0,400}") {
        let _ = read_trace(&input);
    }

    /// Arbitrary *line-shaped* garbage built from plausible tokens.
    #[test]
    fn structured_garbage_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("ACMR-TRACE v1".to_string()),
                Just("edges 3".to_string()),
                Just("caps 1 2 3".to_string()),
                Just("requests 2".to_string()),
                Just("1 0 1".to_string()),
                Just("-5 99".to_string()),
                Just("nan 0".to_string()),
                Just("".to_string()),
            ],
            0..12,
        )
    ) {
        let _ = read_trace(&lines.join("\n"));
    }

    /// Structured round-trip: any valid instance survives
    /// write → read → write byte-identically.
    #[test]
    fn roundtrip_lossless(
        caps in proptest::collection::vec(1u32..9, 1..6),
        reqs in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 1..4), 1u32..1000),
            0..20,
        ),
    ) {
        let m = caps.len();
        let mut inst = AdmissionInstance::from_capacities(caps);
        for (edges, cost) in reqs {
            let edges: Vec<EdgeId> = edges.into_iter().map(|e| EdgeId((e % m) as u32)).collect();
            inst.push(Request::new(EdgeSet::new(edges), cost as f64));
        }
        let text = write_trace(&inst);
        let back = read_trace(&text).unwrap();
        prop_assert_eq!(&back.capacities, &inst.capacities);
        prop_assert_eq!(&back.requests, &inst.requests);
        prop_assert_eq!(write_trace(&back), text);
    }
}
