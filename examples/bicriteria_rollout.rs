//! Deterministic bicriteria rollout (§5): when randomness is not an
//! option (reproducible infrastructure rollouts), the bicriteria
//! algorithm covers every demand `(1−ε)k` times deterministically at
//! `O(log m log n)` cost.
//!
//! Shows the ε trade-off: more slack → fewer sets bought, always
//! meeting the relaxed coverage contract, with the Lemma 6 potential
//! audited along the run.
//!
//! ```text
//! cargo run --example bicriteria_rollout
//! ```

use acmr::core::setcover::{BicriteriaCover, OnlineSetCover};
use acmr::harness::{run_set_cover, setcover_opt, BoundBudget};
use acmr::workloads::{random_arrivals, random_set_system, ArrivalPattern, SetSystemSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = SetSystemSpec {
        num_elements: 30,
        num_sets: 45,
        density: 0.3,
        min_degree: 4,
        max_cost: 1,
    };
    let mut rng = StdRng::seed_from_u64(555);
    let system = random_set_system(&spec, &mut rng);
    let arrivals = random_arrivals(&system, ArrivalPattern::RoundRobin, 3, &mut rng);
    let opt = setcover_opt(&system, &arrivals, BoundBudget::default());
    println!(
        "{} zones, {} rollout bundles, {} demands; full-k OPT ≥ {:.1}\n",
        system.num_elements(),
        system.num_sets(),
        arrivals.len(),
        opt.value,
    );
    println!(
        "{:<8} {:>8} {:>10} {:>16} {:>12} {:>10}",
        "ε", "bundles", "ratio", "worst coverage", "max Φ/n²", "fallbacks"
    );
    for &eps in &[0.05, 0.1, 0.25, 0.5] {
        let mut alg = BicriteriaCover::new(system.clone(), eps);
        let n2 = (system.num_elements() as f64).powi(2);
        // Audited replay with a potential probe per arrival.
        let mut max_phi = alg.potential() / n2;
        let run = {
            // run_set_cover audits the (1−ε)k contract per arrival.
            let mut probe = BicriteriaCover::new(system.clone(), eps);
            let r = run_set_cover(&mut probe, &system, &arrivals);
            for &j in &arrivals {
                alg.on_arrival(j);
                max_phi = max_phi.max(alg.potential() / n2);
            }
            r
        };
        println!(
            "{:<8} {:>8} {:>10.2} {:>16.3} {:>12.4} {:>10}",
            eps,
            run.sets_bought,
            opt.ratio(run.cost),
            run.worst_coverage_ratio,
            max_phi,
            alg.fallback_picks(),
        );
        assert!(max_phi <= 1.0 + 1e-9, "Lemma 6 violated");
    }
    println!("\nLemma 6 held on every run (Φ ≤ n² throughout).");
}
