//! ISP backbone scenario: video sessions with service tiers on a tree
//! backbone, the workload the paper's introduction motivates —
//! rejections should be rare events, and *cheap* when forced.
//!
//! Compares the paper's randomized algorithm against the
//! first-come-first-served baseline on the same arrival sequence:
//! FCFS fills up with whatever comes first and then pays full price for
//! premium arrivals; the paper's algorithm preempts cheap sessions to
//! keep premium ones.
//!
//! ```text
//! cargo run --example isp_admission
//! ```

use acmr::baselines::GreedyNonPreemptive;
use acmr::core::{RandConfig, RandomizedAdmission};
use acmr::harness::{admission_opt, run_admission, BoundBudget};
use acmr::workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 5-level backbone tree (31 PoPs), 8 sessions per link. Session
    // value is bimodal: best-effort (1) vs premium (25).
    let spec = PathWorkloadSpec {
        topology: Topology::Tree { levels: 5 },
        capacity: 8,
        overload: 1.8,
        costs: CostModel::Bimodal {
            lo: 1.0,
            hi: 25.0,
            p_hi: 0.2,
        },
        max_hops: 8,
    };
    let (graph, instance) = random_path_workload(&spec, &mut StdRng::seed_from_u64(2024));
    let premium = instance.requests.iter().filter(|r| r.cost > 1.0).count();
    println!(
        "backbone: {} links × capacity {}; {} sessions ({} premium)",
        graph.num_edges(),
        graph.max_capacity(),
        instance.requests.len(),
        premium,
    );

    let opt = admission_opt(&instance, BoundBudget::default());
    println!("offline OPT rejection cost ≥ {:.1}\n", opt.value);

    // The paper's algorithm.
    let mut aag = RandomizedAdmission::new(
        &instance.capacities,
        RandConfig::weighted(),
        StdRng::seed_from_u64(1),
    );
    let aag_run = run_admission(&mut aag, &instance);
    report("AAG randomized (paper)", &instance, &aag_run, &opt);

    // FCFS baseline.
    let mut fcfs = GreedyNonPreemptive::new(&instance.capacities);
    let fcfs_run = run_admission(&mut fcfs, &instance);
    report("FCFS greedy (baseline)", &instance, &fcfs_run, &opt);
}

fn report(
    name: &str,
    instance: &acmr::core::AdmissionInstance,
    run: &acmr::harness::AdmissionRun,
    opt: &acmr::harness::OptBound,
) {
    let premium_lost = instance
        .requests
        .iter()
        .zip(&run.accepted)
        .filter(|(r, &a)| r.cost > 1.0 && !a)
        .count();
    println!(
        "{name}:\n  rejected cost {:.1} (ratio {:.2}), {} rejections, {} preemptions, premium lost: {}\n",
        run.rejected_cost,
        opt.ratio(run.rejected_cost),
        run.rejected_count,
        run.preemptions,
        premium_lost,
    );
}
