//! ISP backbone scenario: video sessions with service tiers on a tree
//! backbone, the workload the paper's introduction motivates —
//! rejections should be rare events, and *cheap* when forced.
//!
//! Compares the paper's randomized algorithm against the
//! first-come-first-served baseline on the same arrival sequence:
//! FCFS fills up with whatever comes first and then pays full price for
//! premium arrivals; the paper's algorithm preempts cheap sessions to
//! keep premium ones.
//!
//! ```text
//! cargo run --example isp_admission
//! ```

use acmr::core::{AlgorithmSpec, Session, DEFAULT_ALGORITHM};
use acmr::harness::{admission_opt, default_registry, BoundBudget};
use acmr::workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 5-level backbone tree (31 PoPs), 8 sessions per link. Session
    // value is bimodal: best-effort (1) vs premium (25).
    let spec = PathWorkloadSpec {
        topology: Topology::Tree { levels: 5 },
        capacity: 8,
        overload: 1.8,
        costs: CostModel::Bimodal {
            lo: 1.0,
            hi: 25.0,
            p_hi: 0.2,
        },
        max_hops: 8,
    };
    let (graph, instance) = random_path_workload(&spec, &mut StdRng::seed_from_u64(2024));
    let premium = instance.requests.iter().filter(|r| r.cost > 1.0).count();
    println!(
        "backbone: {} links × capacity {}; {} sessions ({} premium)",
        graph.num_edges(),
        graph.max_capacity(),
        instance.requests.len(),
        premium,
    );

    let opt = admission_opt(&instance, BoundBudget::default());
    println!("offline OPT rejection cost ≥ {:.1}\n", opt.value);

    // Both contenders run through the same registry + Session pipeline;
    // only the spec string differs.
    let registry = default_registry();
    let specs = [
        (
            "AAG randomized (paper)",
            format!("{DEFAULT_ALGORITHM}?seed=1"),
        ),
        ("FCFS greedy (baseline)", "greedy".to_string()),
    ];
    for (label, alg_spec) in &specs {
        let parsed = AlgorithmSpec::parse(alg_spec).expect("valid spec");
        let mut session = Session::from_registry(&registry, &parsed, &instance.capacities, 0)
            .expect("registry build");
        let run = session.run_trace(&instance).expect("audited run");
        let premium_lost = instance
            .requests
            .iter()
            .zip(session.accepted_mask())
            .filter(|(r, a)| r.cost > 1.0 && !a)
            .count();
        println!(
            "{label}:\n  rejected cost {:.1} (ratio {:.2}), {} rejections, {} preemptions, premium lost: {}\n",
            run.rejected_cost,
            opt.ratio(run.rejected_cost),
            run.rejected_count,
            run.preemptions,
            premium_lost,
        );
    }
}
