//! Fault-tolerant monitoring scenario for online set cover **with
//! repetitions** (§4): services must be watched by as many *distinct*
//! monitoring probes as they have reported incidents — each repeat
//! incident demands one more independent watcher.
//!
//! Runs the paper's reduction-based algorithm against the naive
//! buy-cheapest baseline and the offline greedy benchmark.
//!
//! ```text
//! cargo run --example monitoring_cover
//! ```

use acmr::baselines::setcover::offline_greedy_multicover;
use acmr::baselines::NaiveOnlineCover;
use acmr::core::setcover::ReductionCover;
use acmr::core::RandConfig;
use acmr::harness::{run_set_cover, setcover_opt, BoundBudget};
use acmr::workloads::{random_arrivals, random_set_system, ArrivalPattern, SetSystemSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 40 services, 60 candidate probe deployments; each probe watches
    // ~25% of services. Every service must tolerate up to 3 incidents.
    let spec = SetSystemSpec {
        num_elements: 40,
        num_sets: 60,
        density: 0.25,
        min_degree: 4,
        max_cost: 1,
    };
    let mut rng = StdRng::seed_from_u64(99);
    let system = random_set_system(&spec, &mut rng);
    let incidents = random_arrivals(&system, ArrivalPattern::UniformRandom, 3, &mut rng);
    println!(
        "{} services, {} candidate probes, {} incidents (with repeats)",
        system.num_elements(),
        system.num_sets(),
        incidents.len(),
    );

    let opt = setcover_opt(&system, &incidents, BoundBudget::default());
    println!("offline OPT probe count ≥ {:.1}\n", opt.value);

    // Paper: online set cover with repetitions via admission control.
    let mut reduction = ReductionCover::randomized(
        system.clone(),
        RandConfig::unweighted(),
        StdRng::seed_from_u64(1),
    );
    let red = run_set_cover(&mut reduction, &system, &incidents);
    println!(
        "AAG reduction (paper):  {} probes (ratio {:.2}), coverage ok: {}",
        red.sets_bought,
        opt.ratio(red.cost),
        red.worst_coverage_ratio >= 1.0,
    );
    assert_eq!(reduction.repairs(), 0, "safety net must stay idle");

    // Naive online baseline.
    let mut naive = NaiveOnlineCover::new(system.clone());
    let nv = run_set_cover(&mut naive, &system, &incidents);
    println!(
        "naive buy-cheapest:     {} probes (ratio {:.2})",
        nv.sets_bought,
        opt.ratio(nv.cost),
    );

    // Offline greedy benchmark (sees all demands upfront).
    let mut demands = vec![0u32; system.num_elements()];
    for &j in &incidents {
        demands[j as usize] += 1;
    }
    let greedy = offline_greedy_multicover(&system, &demands).unwrap();
    println!(
        "offline greedy (H_n):   {} probes (ratio {:.2})",
        greedy.len(),
        opt.ratio(greedy.len() as f64),
    );
}
