//! Quickstart: run the paper's randomized admission-control algorithm
//! on a small overloaded network and compare against the exact offline
//! optimum.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use acmr::core::{RandConfig, RandomizedAdmission};
use acmr::harness::{admission_opt, run_admission, BoundBudget};
use acmr::workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 32-edge line network, capacity 4 per edge, loaded to 2× its
    // capacity with random weighted interval requests — the regime
    // where rejections are unavoidable and *who* you reject matters.
    let spec = PathWorkloadSpec {
        topology: Topology::Line { m: 32 },
        capacity: 4,
        overload: 2.0,
        costs: CostModel::Uniform { lo: 1.0, hi: 10.0 },
        max_hops: 8,
    };
    let (graph, instance) = random_path_workload(&spec, &mut StdRng::seed_from_u64(7));
    println!(
        "network: {} edges, capacity {}, {} requests (total cost {:.1})",
        graph.num_edges(),
        graph.max_capacity(),
        instance.requests.len(),
        instance.total_cost(),
    );

    // The paper's O(log²(mc))-competitive randomized algorithm.
    let mut alg = RandomizedAdmission::new(
        &instance.capacities,
        RandConfig::weighted(),
        StdRng::seed_from_u64(42),
    );
    let run = run_admission(&mut alg, &instance);
    println!(
        "online : rejected {} requests (cost {:.1}), {} preemptions",
        run.rejected_count, run.rejected_cost, run.preemptions,
    );

    // Offline optimum (exact if small enough, LP bound otherwise).
    let opt = admission_opt(&instance, BoundBudget::default());
    println!("offline: OPT {} {:.1}", bound_label(opt.kind), opt.value);
    println!("ratio  : {:.2}  (theory: O(log²(mc)) = O({:.1}))",
        opt.ratio(run.rejected_cost),
        (graph.num_edges() as f64 * graph.max_capacity() as f64).ln().powi(2),
    );
}

fn bound_label(kind: acmr::harness::OptBoundKind) -> &'static str {
    match kind {
        acmr::harness::OptBoundKind::Exact => "=",
        _ => "≥",
    }
}
