//! Quickstart: drive the paper's randomized admission-control algorithm
//! through the streaming `Session` API on a small overloaded network,
//! then compare against the exact offline optimum.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use acmr::core::{AlgorithmSpec, Session, DEFAULT_ALGORITHM};
use acmr::harness::{admission_opt, default_registry, opt_summary, BoundBudget};
use acmr::workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 32-edge line network, capacity 4 per edge, loaded to 2× its
    // capacity with random weighted interval requests — the regime
    // where rejections are unavoidable and *who* you reject matters.
    let spec = PathWorkloadSpec {
        topology: Topology::Line { m: 32 },
        capacity: 4,
        overload: 2.0,
        costs: CostModel::Uniform { lo: 1.0, hi: 10.0 },
        max_hops: 8,
    };
    let (graph, instance) = random_path_workload(&spec, &mut StdRng::seed_from_u64(7));
    println!(
        "network: {} edges, capacity {}, {} requests (total cost {:.1})",
        graph.num_edges(),
        graph.max_capacity(),
        instance.requests.len(),
        instance.total_cost(),
    );

    // Algorithms are addressed by spec string through the registry; the
    // Session owns the algorithm, the feasibility audit, and running
    // statistics, one arrival at a time.
    let registry = default_registry();
    let alg = AlgorithmSpec::parse(&format!("{DEFAULT_ALGORITHM}?seed=42")).expect("valid spec");
    let mut session =
        Session::from_registry(&registry, &alg, &instance.capacities, 0).expect("registry build");
    for request in &instance.requests {
        let event = session.push(request).expect("audited arrival");
        if !event.preempted.is_empty() {
            println!(
                "  arrival {:>3}: preempted {} cheaper request(s) to make room",
                event.id.0,
                event.preempted.len(),
            );
        }
    }
    let mut report = session.report();
    println!(
        "online : rejected {} requests (cost {:.1}), {} preemptions",
        report.rejected_count, report.rejected_cost, report.preemptions,
    );

    // Offline optimum (exact if small enough, LP bound otherwise),
    // attached to the same RunReport schema the CLI prints as JSON.
    let opt = admission_opt(&instance, BoundBudget::default());
    report.opt = Some(opt_summary(&opt, report.rejected_cost));
    println!("offline: OPT ({}) {:.1}", opt.kind.label(), opt.value);
    println!(
        "ratio  : {:.2}  (theory: O(log²(mc)) = O({:.1}))",
        report.ratio().unwrap_or(1.0),
        (graph.num_edges() as f64 * graph.max_capacity() as f64)
            .ln()
            .powi(2),
    );
}
