//! Thin shim for the `acmr` CLI; all logic (and its tests) lives in
//! `acmr::cli`.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let needs_stdin = matches!(
        argv.first().map(String::as_str),
        Some("stats") | Some("opt") | Some("run")
    );
    let mut stdin = String::new();
    if needs_stdin && std::io::stdin().read_to_string(&mut stdin).is_err() {
        eprintln!("error: could not read trace from stdin");
        return ExitCode::FAILURE;
    }
    match acmr::cli::dispatch(&argv, &stdin) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
