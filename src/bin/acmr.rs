//! Thin shim for the `acmr` CLI; all logic (and its tests) lives in
//! `acmr::cli`.
//!
//! Stdin is handed to [`acmr::cli::dispatch_io`] as a raw byte stream:
//! commands that need the whole trace slurp it themselves, while
//! `acmr run --stream -` reads it chunk by chunk — so a trace far
//! larger than memory can be piped straight through.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdin = std::io::stdin().lock();
    match acmr::cli::dispatch_io(&argv, &mut stdin) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
