//! The `acmr` command-line tool: generate, inspect, bound and run
//! admission-control traces from the shell.
//!
//! ```text
//! acmr gen  --m 64 --cap 4 --overload 2 --seed 1 [--weighted] > t.trace
//! acmr gen  --m 64 --format binary --out t.bin   # binary v2 (mmap-able)
//! acmr convert t.trace t.bin                     # text <-> binary, lossless
//! acmr stats < t.trace
//! acmr opt   < t.trace
//! acmr algs                            # list registered algorithms
//! acmr run --alg 'aag-unweighted?seed=7' --format json < t.trace
//! acmr gen --m 64 | acmr run --stream -          # chunked, unbounded
//! acmr serve --addr 127.0.0.1:4790               # live front end
//! acmr client --stream t.trace --alg greedy      # replay over the wire
//! ```
//!
//! `run` dispatches through [`crate::harness::default_registry`] — any
//! algorithm registered anywhere in the workspace is runnable by spec
//! string, and the report (text or JSON) is the workspace-wide
//! [`crate::core::RunReport`] schema, RNG seed included. `run --stream
//! <file|->` streams the trace in chunks (never materializing it) and
//! produces byte-identical reports to the in-memory path; the trace
//! grammar is specified in `docs/TRACE_FORMAT.md`.
//!
//! All subcommand logic lives here (unit-tested); `src/bin/acmr.rs` is
//! a thin stdin/stdout shim around [`dispatch_io`].

use crate::core::{AdmissionInstance, RequestSource, DEFAULT_ALGORITHM};
use crate::harness::{
    default_registry, run_report, run_report_batched, run_report_from_path, run_report_spooled,
    BoundBudget, ClusterDriver, SweepJob, TraceSource,
};
use crate::serve::{
    serve_trace, serve_trace_v2, ProtoVersion, ServeConfig, WorkerPool, DEFAULT_ADDR,
    LISTENING_PREFIX,
};
use crate::workloads::trace::{read_trace, write_trace, TraceReader, TraceWriter};
use crate::workloads::{
    buyback_hostile, dyadic_admission_instance, nested_intervals, open_trace, random_path_workload,
    read_bin_trace, repeated_hot_edge, sniff_bytes, stochastic_workload, two_phase_squeeze,
    write_bin_trace, BinTraceWriter, CostModel, PathWorkloadSpec, StochasticSpec, Topology,
    TraceFormat, TrafficModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::Read;

/// CLI failure: message for stderr, non-zero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parse `--key value` pairs (flags without values get `"true"`).
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| err(format!("expected --flag, got {:?}", args[i])))?;
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            map.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            map.insert(key.to_string(), "true".to_string());
            i += 1;
        }
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("--{key}: cannot parse {v:?}"))),
    }
}

/// [`get`] for f64 flags with a uniform validity check: every float
/// flag funnels through here so bad values (NaN included — a bare
/// comparison would silently wave NaN through) surface as the same
/// typed error shape, pointing at `acmr help`.
fn get_f64_valid(
    flags: &HashMap<String, String>,
    key: &str,
    default: f64,
    requirement: &str,
    ok: impl Fn(f64) -> bool,
) -> Result<f64, CliError> {
    let value: f64 = get(flags, key, default)?;
    if !ok(value) {
        return Err(err(format!(
            "--{key} must be {requirement} (got {value}); see `acmr help`"
        )));
    }
    Ok(value)
}

/// The deterministic adversarial families of
/// `acmr_workloads::adversarial`, addressed by `--family`.
fn gen_adversarial(
    flags: &HashMap<String, String>,
    m: u32,
    cap: u32,
) -> Result<AdmissionInstance, CliError> {
    if m < 2 {
        return Err(err("adversarial topologies need --m at least 2"));
    }
    let rounds: u32 = get(flags, "rounds", 2)?;
    if rounds == 0 {
        return Err(err("--rounds must be at least 1"));
    }
    let inst = match flags.get("family").map(String::as_str) {
        None | Some("nested") => {
            let shrink: u32 = get(flags, "shrink", 2)?;
            if shrink == 0 {
                return Err(err("--shrink must be at least 1"));
            }
            nested_intervals(m, cap, shrink, rounds)
        }
        Some("hot-edge") => {
            let total: u32 = get(flags, "total", cap.saturating_mul(3))?;
            repeated_hot_edge(m, cap, total)
        }
        Some("squeeze") => {
            let width: u32 = get(flags, "width", (m / 4).max(1))?;
            if !(1..=m).contains(&width) {
                return Err(err(format!("--width must be in 1..={m}")));
            }
            let hits: u32 = get(flags, "hits", cap)?;
            if hits > cap {
                return Err(err(format!(
                    "--hits {hits} exceeds --cap {cap}: phase 2 cannot exceed edge-0 capacity"
                )));
            }
            two_phase_squeeze(m, cap, width, hits)
        }
        Some(other) => {
            return Err(err(format!(
                "unknown adversarial family {other:?} (nested, hot-edge, squeeze)"
            )))
        }
    };
    Ok(inst)
}

/// The dyadic lower-bound trace of `acmr_workloads::lower_bound`.
fn gen_lower_bound(
    flags: &HashMap<String, String>,
    m: u32,
    cap: u32,
) -> Result<AdmissionInstance, CliError> {
    // Default levels: the largest dyadic line that fits in --m edges,
    // clamped to the generator's ceiling (an explicit --levels beyond
    // it still errors below).
    let default_levels = (32 - m.leading_zeros()).saturating_sub(1).clamp(1, 16);
    let levels: u32 = get(flags, "levels", default_levels)?;
    if !(1..=16).contains(&levels) {
        return Err(err(format!("--levels must be in 1..=16 (got {levels})")));
    }
    let rounds: u32 = get(flags, "rounds", 2)?;
    if rounds == 0 {
        return Err(err("--rounds must be at least 1"));
    }
    Ok(dyadic_admission_instance(levels, cap, rounds))
}

/// Seeded stochastic traffic over a line network, addressed by
/// `--model` (`acmr_workloads::stochastic`). All model parameters are
/// validated here so bad flags surface as typed errors, not panics.
fn gen_stochastic(
    flags: &HashMap<String, String>,
    m: u32,
    cap: u32,
    max_hops: u32,
    weighted: bool,
    seed: u64,
) -> Result<AdmissionInstance, CliError> {
    if m < 2 {
        return Err(err("--topology stochastic needs --m at least 2"));
    }
    let model = match flags.get("model").map(String::as_str) {
        None | Some("iid") => TrafficModel::Iid,
        Some("mmpp") => TrafficModel::mmpp_default(),
        Some("diurnal") => {
            let period: u32 = get(flags, "period", 64)?;
            if period < 2 {
                return Err(err("--period must be at least 2"));
            }
            let amplitude = get_f64_valid(flags, "amplitude", 0.8, "in [0,1)", |a| {
                (0.0..1.0).contains(&a)
            })?;
            TrafficModel::Diurnal { period, amplitude }
        }
        Some("flash") => {
            let period: u32 = get(flags, "period", 64)?;
            let width: u32 = get(flags, "width", 8.min(period.saturating_sub(1).max(1)))?;
            if width == 0 || width >= period {
                return Err(err(format!(
                    "--width must be in 1..{period} (inside the flash --period)"
                )));
            }
            let boost =
                get_f64_valid(flags, "boost", 6.0, "a finite number greater than 1", |b| {
                    b.is_finite() && b > 1.0
                })?;
            TrafficModel::Flash {
                period,
                width,
                boost,
            }
        }
        Some(other) => {
            return Err(err(format!(
                "unknown stochastic model {other:?} (iid, mmpp, diurnal, flash); see `acmr help`"
            )))
        }
    };
    let arrival_rate = get_f64_valid(flags, "arrival-rate", 4.0, "a positive number", |r| {
        r.is_finite() && r > 0.0
    })?;
    let duration: u32 = get(flags, "duration", 128)?;
    if duration == 0 {
        return Err(err("--duration must be at least 1"));
    }
    let spec = StochasticSpec {
        topology: Topology::Line { m },
        capacity: cap,
        model,
        arrival_rate,
        duration,
        costs: if weighted {
            CostModel::Zipf {
                n_values: 64,
                s: 1.1,
            }
        } else {
            CostModel::Unit
        },
        max_hops,
        session_alpha: 2.5,
        session_max: 8,
        width_alpha: 1.3,
    };
    Ok(stochastic_workload(&spec, &mut StdRng::seed_from_u64(seed)).1)
}

/// The buyback (cancellation-cost) stress instance
/// `acmr_workloads::buyback_hostile`: geometric cost-escalation waves
/// that punish non-preempting algorithms — each wave re-saturates the
/// network at `--growth ×` the previous wave's prices.
fn gen_buyback_hostile(
    flags: &HashMap<String, String>,
    m: u32,
    cap: u32,
) -> Result<AdmissionInstance, CliError> {
    if m == 0 {
        return Err(err("--topology buyback-hostile needs --m at least 1"));
    }
    let waves: u32 = get(flags, "waves", 6)?;
    if waves < 2 {
        return Err(err("--waves must be at least 2"));
    }
    let growth = get_f64_valid(
        flags,
        "growth",
        4.0,
        "a finite number greater than 1",
        |g| g.is_finite() && g > 1.0,
    )?;
    Ok(buyback_hostile(m, cap, waves, growth))
}

/// Serialize a generated instance per `--format text|binary` and
/// `--out FILE`. Text defaults to stdout (the returned string); binary
/// is raw bytes, so it requires `--out` — stdout stays text.
fn emit_gen(flags: &HashMap<String, String>, inst: &AdmissionInstance) -> Result<String, CliError> {
    let format = match flags.get("format").map(String::as_str) {
        None | Some("text") => TraceFormat::TextV1,
        Some("binary") => TraceFormat::BinaryV2,
        Some(other) => return Err(err(format!("unknown --format {other:?} (text or binary)"))),
    };
    let out = match flags.get("out").map(String::as_str) {
        Some("true") => return Err(err("--out needs a file path")),
        other => other,
    };
    match (format, out) {
        (TraceFormat::TextV1, None) => Ok(write_trace(inst)),
        (TraceFormat::TextV1, Some(path)) => {
            std::fs::write(path, write_trace(inst))
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
            Ok(String::new())
        }
        (TraceFormat::BinaryV2, None) => Err(err(
            "--format binary emits raw bytes; write them with --out FILE (stdout is text-only)",
        )),
        (TraceFormat::BinaryV2, Some(path)) => {
            std::fs::write(path, write_bin_trace(inst))
                .map_err(|e| err(format!("cannot write {path}: {e}")))?;
            Ok(String::new())
        }
    }
}

/// `acmr gen` — emit a trace to the returned string (text), or to
/// `--out FILE` in `--format text|binary`.
pub fn cmd_gen(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let m: u32 = get(&flags, "m", 64)?;
    let cap: u32 = get(&flags, "cap", 4)?;
    if cap == 0 {
        return Err(err("--cap must be at least 1"));
    }
    let overload = get_f64_valid(&flags, "overload", 2.0, "a positive number", |o| {
        o.is_finite() && o > 0.0
    })?;
    let seed: u64 = get(&flags, "seed", 0)?;
    let max_hops: u32 = get(&flags, "max-hops", 8)?;
    let weighted = flags.contains_key("weighted");
    let topology_name = flags.get("topology").map(String::as_str);
    if flags.contains_key("family") && topology_name != Some("adversarial") {
        return Err(err(
            "--family only applies to --topology adversarial (nested, hot-edge, squeeze); \
             see `acmr help`",
        ));
    }
    if flags.contains_key("model") && topology_name != Some("stochastic") {
        return Err(err(
            "--model only applies to --topology stochastic (iid, mmpp, diurnal, flash); \
             see `acmr help`",
        ));
    }
    for key in ["waves", "growth"] {
        if flags.contains_key(key) && topology_name != Some("buyback-hostile") {
            return Err(err(format!(
                "--{key} only applies to --topology buyback-hostile; see `acmr help`"
            )));
        }
    }
    // The hostile families and the stochastic simulator are their own
    // constructions, not random path workloads; they branch off before
    // the spec is built.
    let inst = match topology_name {
        Some("adversarial") => gen_adversarial(&flags, m, cap)?,
        Some("lower-bound") => gen_lower_bound(&flags, m, cap)?,
        Some("stochastic") => gen_stochastic(&flags, m, cap, max_hops, weighted, seed)?,
        Some("buyback-hostile") => gen_buyback_hostile(&flags, m, cap)?,
        _ => {
            let topology = match topology_name {
                None | Some("line") => Topology::Line { m },
                Some("grid") => {
                    let side = ((m as f64).sqrt().ceil() as u32).max(2);
                    Topology::Grid {
                        rows: side,
                        cols: side,
                    }
                }
                Some("tree") => Topology::Tree {
                    levels: (32 - m.leading_zeros()).max(2),
                },
                Some(other) => return Err(err(format!("unknown topology {other:?}"))),
            };
            let spec = PathWorkloadSpec {
                topology,
                capacity: cap,
                overload,
                costs: if weighted {
                    CostModel::Zipf {
                        n_values: 64,
                        s: 1.1,
                    }
                } else {
                    CostModel::Unit
                },
                max_hops,
            };
            random_path_workload(&spec, &mut StdRng::seed_from_u64(seed)).1
        }
    };
    emit_gen(&flags, &inst)
}

/// `acmr stats` — summarize a trace of either format. The leading
/// magic picks the parser (text v1 / binary v2) and is reported in the
/// output; unknown magics are refused with a typed error pointing at
/// `docs/TRACE_FORMAT.md`, never mis-parsed as text.
pub fn cmd_stats(trace: &[u8]) -> Result<String, CliError> {
    let format = sniff_bytes(trace).map_err(|e| err(e.to_string()))?;
    let inst = match format {
        TraceFormat::TextV1 => {
            let text = std::str::from_utf8(trace)
                .map_err(|e| err(format!("text trace is not valid UTF-8: {e}")))?;
            read_trace(text).map_err(|e| err(e.to_string()))?
        }
        TraceFormat::BinaryV2 => read_bin_trace(trace).map_err(|e| err(e.to_string()))?,
    };
    let mut out = String::new();
    out.push_str(&format!(
        "format          : {}\nedges           : {}\nmax capacity    : {}\nrequests        : {}\ntotal cost      : {:.2}\nunweighted      : {}\nmax edge excess : {}\n",
        format.describe(),
        inst.num_edges(),
        inst.max_capacity(),
        inst.requests.len(),
        inst.total_cost(),
        inst.is_unweighted(),
        inst.max_excess(),
    ));
    Ok(out)
}

/// `acmr stats --addr HOST:PORT` — probe a live serving endpoint for
/// its counters (the sessionless `STATS` exchange: connect, greeting,
/// one `STATS` line, one reply). The same numbers are reachable
/// mid-session via `acmr client --stats`; the wire exchange is
/// specified in docs/SERVING.md.
pub fn cmd_stats_remote(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    for key in flags.keys() {
        if !matches!(key.as_str(), "addr" | "format") {
            return Err(err(format!(
                "unknown stats flag --{key} (--addr, --format)"
            )));
        }
    }
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_ADDR.to_string());
    let report = crate::serve::fetch_stats(addr.as_str()).map_err(|e| err(e.to_string()))?;
    render_stats_report(&report, &flags)
}

/// Render a serving [`crate::serve::StatsReport`] in the trace-stats
/// column style (or as JSON with `--format json`).
fn render_stats_report(
    report: &crate::serve::StatsReport,
    flags: &HashMap<String, String>,
) -> Result<String, CliError> {
    match flags.get("format").map(String::as_str) {
        None | Some("text") => {
            let s = &report.server;
            let c = &report.connection;
            Ok(format!(
                "uptime ms       : {}\nconns opened    : {}\nconns active    : {}\nbusy rejections : {}\nsessions opened : {}\nsessions active : {}\narrivals        : {}\nbatches         : {}\nbytes in        : {}\nbytes out       : {}\nerrors          : {}\nthis connection : sessions={} arrivals={} batches={} bytes_in={} bytes_out={} errors={}\n",
                s.uptime_ms,
                s.connections_opened,
                s.connections_active,
                s.busy_rejections,
                s.sessions_opened,
                s.sessions_active,
                s.arrivals,
                s.batches,
                s.bytes_in,
                s.bytes_out,
                s.errors,
                c.sessions,
                c.arrivals,
                c.batches,
                c.bytes_in,
                c.bytes_out,
                c.errors,
            ))
        }
        Some("json") => serde_json::to_string_pretty(report)
            .map(|j| j + "\n")
            .map_err(|e| err(e.to_string())),
        Some(other) => Err(err(format!("unknown --format {other:?} (text or json)"))),
    }
}

/// `acmr convert <in> <out> [--to text|binary]` — rewrite a trace in
/// the other format (or the one `--to` names; converting to the same
/// format canonicalizes it). Streaming both ways, so traces larger
/// than memory convert fine; lossless in both directions — costs keep
/// their exact `f64` bits (the text format's shortest-repr decimals
/// round-trip), footprints their canonical sorted order — so
/// `text → binary → text` and `binary → text → binary` reproduce
/// their inputs byte for byte (`tests/convert_roundtrip.rs` pins
/// this over the golden corpus).
pub fn cmd_convert(args: &[String]) -> Result<String, CliError> {
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (positional, flag_args) = args.split_at(split);
    let flags = parse_flags(flag_args)?;
    let [input, output] = positional else {
        return Err(err(
            "convert needs an input and an output path: acmr convert <in> <out> [--to text|binary]",
        ));
    };
    // In-place conversion would truncate the input (File::create)
    // before a single record is read — refuse it up front. Canonical
    // paths, so `t.bin` vs `./t.bin` vs a symlink all count as "same
    // file"; a not-yet-existing output cannot collide with an existing
    // input, so its canonicalize failure is fine to ignore.
    if let (Ok(a), Ok(b)) = (std::fs::canonicalize(input), std::fs::canonicalize(output)) {
        if a == b {
            return Err(err(format!(
                "convert cannot write its output over its input ({input}): the output is \
                 truncated before the input is read. Convert to a new path, then rename"
            )));
        }
    }
    let reader = open_trace(input).map_err(|e| err(e.to_string()))?;
    let from = reader.format();
    let to = match flags.get("to").map(String::as_str) {
        None => match from {
            TraceFormat::TextV1 => TraceFormat::BinaryV2,
            TraceFormat::BinaryV2 => TraceFormat::TextV1,
        },
        Some("text") => TraceFormat::TextV1,
        Some("binary") => TraceFormat::BinaryV2,
        Some(other) => return Err(err(format!("unknown --to {other:?} (text or binary)"))),
    };
    let capacities = reader.capacities().to_vec();
    let declared = reader.declared_requests();
    let sink =
        std::fs::File::create(output).map_err(|e| err(format!("cannot create {output}: {e}")))?;
    let sink = std::io::BufWriter::new(sink);
    let wio = |e: std::io::Error| err(format!("cannot write {output}: {e}"));
    match to {
        TraceFormat::TextV1 => {
            let mut w = TraceWriter::new(sink, &capacities, declared as usize).map_err(wio)?;
            for r in reader {
                w.push(&r.map_err(|e| err(e.to_string()))?).map_err(wio)?;
            }
            w.finish().map_err(wio)?;
        }
        TraceFormat::BinaryV2 => {
            let mut w = BinTraceWriter::new(sink, &capacities, declared).map_err(wio)?;
            for r in reader {
                w.push(&r.map_err(|e| err(e.to_string()))?).map_err(wio)?;
            }
            w.finish().map_err(wio)?;
        }
    }
    Ok(format!(
        "converted {input} [{}] -> {output} [{}]: {} edges, {declared} requests\n",
        from.describe(),
        to.describe(),
        capacities.len(),
    ))
}

/// `acmr opt` — best offline bound for a trace.
pub fn cmd_opt(trace: &str) -> Result<String, CliError> {
    let inst = read_trace(trace).map_err(|e| err(e.to_string()))?;
    let bound = crate::harness::admission_opt(&inst, BoundBudget::default());
    let kind: &str = bound.kind.label();
    Ok(format!("opt {kind} {:.4}\n", bound.value))
}

/// `acmr algs` — list every algorithm in the default registry.
pub fn cmd_algs() -> Result<String, CliError> {
    let reg = default_registry();
    let mut out = String::new();
    for name in reg.names() {
        out.push_str(&format!(
            "{name:<18} {}\n",
            reg.summary(name).unwrap_or_default()
        ));
    }
    out.push_str(
        "\nSpecs take options after `?`: every algorithm accepts seed=S;\n\
         the aag-* pair additionally accepts threshold=T, prob=P,\n\
         doubling=D, no-prune, and no-classes.\n",
    );
    Ok(out)
}

/// Render a [`crate::core::RunReport`] in the requested `--format`
/// (`text` or `json`) — shared by the in-memory and streamed run
/// paths, which is what makes their outputs byte-identical.
fn render_report(
    report: &crate::core::RunReport,
    flags: &HashMap<String, String>,
) -> Result<String, CliError> {
    match flags.get("format").map(String::as_str) {
        None | Some("text") => Ok(report.to_text()),
        Some("json") => serde_json::to_string_pretty(report)
            .map(|j| j + "\n")
            .map_err(|e| err(e.to_string())),
        Some(other) => Err(err(format!("unknown --format {other:?} (text or json)"))),
    }
}

/// The optional `--batch N` chunk size (`None`: per-push streaming).
fn batch_flag(flags: &HashMap<String, String>) -> Result<Option<usize>, CliError> {
    match flags.get("batch") {
        None => Ok(None),
        Some(_) => Ok(Some(get(flags, "batch", 1)?)),
    }
}

/// The `--proto v1|v2` wire dialect (`acmr serve`, `acmr client`,
/// `acmr run --cluster/--workers`). Defaults to v2 — the binary-frame
/// fast path; force `v1` against fleets that predate it (a v2 request
/// to a v1-only server is answered with its typed `ERR parse` reply,
/// never silently downgraded — see `docs/OPERATIONS.md`).
fn proto_flag(flags: &HashMap<String, String>) -> Result<ProtoVersion, CliError> {
    match flags.get("proto").map(String::as_str) {
        None => Ok(ProtoVersion::V2),
        Some(s) => {
            ProtoVersion::parse(s).ok_or_else(|| err(format!("unknown --proto {s:?} (v1 or v2)")))
        }
    }
}

/// Build the optional worker pool the `--cluster N` / `--workers
/// addr,addr,...` flags ask for: `--cluster` spawns N local `acmr
/// serve` worker processes from this very binary (each announcing its
/// ephemeral port via the `LISTENING <addr>` stderr line the pool
/// parses); `--workers` adopts pre-started serving endpoints instead.
/// `None` when neither flag is present — the in-process paths.
fn cluster_pool(flags: &HashMap<String, String>) -> Result<Option<WorkerPool>, CliError> {
    let proto = proto_flag(flags)?;
    match (flags.get("cluster"), flags.get("workers")) {
        (Some(_), Some(_)) => Err(err(
            "--cluster and --workers are mutually exclusive (spawn local workers OR adopt remote ones)",
        )),
        (Some(_), None) => {
            let count: usize = get(flags, "cluster", 2)?;
            if count == 0 {
                return Err(err("--cluster needs at least 1 worker"));
            }
            let binary = std::env::current_exe()
                .map_err(|e| err(format!("cannot locate the acmr binary to spawn workers: {e}")))?;
            WorkerPool::spawn_local(&binary, count)
                .map(|p| Some(p.proto(proto)))
                .map_err(|e| err(e.to_string()))
        }
        (None, Some(list)) => {
            let addrs: Vec<&str> = list.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
            if list == "true" || addrs.is_empty() {
                return Err(err(
                    "--workers needs a comma-separated address list, e.g. --workers 10.0.0.1:4790,10.0.0.2:4790",
                ));
            }
            WorkerPool::connect(&addrs)
                .map(|p| Some(p.proto(proto)))
                .map_err(|e| err(e.to_string()))
        }
        (None, None) => Ok(None),
    }
}

/// Run one `(spec, trace)` job through a [`ClusterDriver`] over the
/// given pool and render its report — the cross-process body of `acmr
/// run --cluster/--workers`. The report (offline-optimum context
/// included — bounds are computed locally, the workers only decide)
/// is byte-identical to the in-process `acmr run` output; the CLI
/// cluster test pins that against the real binaries.
fn run_cluster(
    pool: &WorkerPool,
    flags: &HashMap<String, String>,
    source: TraceSource,
    alg_spec: &str,
    seed: u64,
) -> Result<String, CliError> {
    let mut driver = ClusterDriver::new(pool).budget(BoundBudget::default());
    if let Some(batch) = batch_flag(flags)? {
        driver = driver.batch(batch);
    }
    let traces = vec![("trace".to_string(), source)];
    let jobs = vec![SweepJob::new("trace", alg_spec, seed)];
    let sweep = driver
        .run_sources(&traces, &jobs)
        .map_err(|e| err(e.to_string()))?;
    let report = sweep.jobs.into_iter().next().expect("one job ran").report;
    render_report(&report, flags)
}

/// `acmr run` — run a registry algorithm over an in-memory trace;
/// returns the report in the requested `--format` (`text` or `json`).
pub fn cmd_run(args: &[String], trace: &str) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    if flags.contains_key("stream") {
        return Err(err("--stream takes a trace file path (or `-` for stdin); \
             use `dispatch_io` / the acmr binary for streamed runs"));
    }
    let inst = read_trace(trace).map_err(|e| err(e.to_string()))?;
    let seed: u64 = get(&flags, "seed", 0)?;
    let alg_spec = flags
        .get("alg")
        .map(String::as_str)
        .unwrap_or(DEFAULT_ALGORITHM);
    if let Some(pool) = cluster_pool(&flags)? {
        return run_cluster(&pool, &flags, TraceSource::InMemory(inst), alg_spec, seed);
    }
    let registry = default_registry();
    // --batch N routes arrivals through Session::push_batch in chunks
    // of N; the report is identical to the streaming path (the
    // differential suite pins that), the processing is amortized.
    let report = match batch_flag(&flags)? {
        None => run_report(&registry, alg_spec, &inst, seed, BoundBudget::default()),
        Some(batch) => run_report_batched(
            &registry,
            alg_spec,
            &inst,
            seed,
            BoundBudget::default(),
            batch,
        ),
    }
    .map_err(|e| err(e.to_string()))?;
    render_report(&report, &flags)
}

/// `acmr run --stream <file|->` — run a registry algorithm over a
/// trace **streamed in chunks** (from a file, or from `stdin` when the
/// target is `-`), never materializing the instance. The report —
/// offline-optimum bound included, via the harness's two-pass scheme —
/// is byte-identical to what [`cmd_run`] produces for the same trace.
pub fn cmd_run_stream(
    args: &[String],
    stdin: &mut dyn Read,
    target: &str,
) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let seed: u64 = get(&flags, "seed", 0)?;
    let alg_spec = flags
        .get("alg")
        .map(String::as_str)
        .unwrap_or(DEFAULT_ALGORITHM);
    // Refuse the unsupported combination *before* cluster_pool spawns
    // (or adopts) a whole worker fleet just to print a usage error.
    let wants_cluster = flags.contains_key("cluster") || flags.contains_key("workers");
    if wants_cluster && target == "-" {
        return Err(err(
            "--cluster/--workers cannot replay `--stream -`: the OPT bound and any \
             retry need to re-read the trace. Use --stream FILE, or pipe the trace \
             on stdin without --stream",
        ));
    }
    if let Some(pool) = cluster_pool(&flags)? {
        return run_cluster(
            &pool,
            &flags,
            TraceSource::Path(target.into()),
            alg_spec,
            seed,
        );
    }
    let batch = batch_flag(&flags)?;
    let registry = default_registry();
    let report = if target == "-" {
        run_report_spooled(
            &registry,
            alg_spec,
            stdin,
            seed,
            BoundBudget::default(),
            batch,
        )
    } else {
        run_report_from_path(
            &registry,
            alg_spec,
            target,
            seed,
            BoundBudget::default(),
            batch,
        )
    }
    .map_err(|e| err(e.to_string()))?;
    render_report(&report, &flags)
}

/// Parse the `acmr serve` flags into a [`ServeConfig`] — split out of
/// [`cmd_serve`] so flag errors are unit-testable without binding a
/// socket.
pub fn serve_options(args: &[String]) -> Result<ServeConfig, CliError> {
    let flags = parse_flags(args)?;
    for key in flags.keys() {
        if !matches!(
            key.as_str(),
            "addr" | "max-conns" | "idle-timeout" | "proto" | "reactor-threads"
        ) {
            return Err(err(format!(
                "unknown serve flag --{key} (--addr, --max-conns, --idle-timeout, --proto, --reactor-threads)"
            )));
        }
    }
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_ADDR.to_string());
    let max_connections: usize = get(&flags, "max-conns", 1024)?;
    if max_connections == 0 {
        return Err(err("--max-conns must be at least 1"));
    }
    // --idle-timeout SECS bounds how long a silent peer may pin a
    // connection slot; absent means sessions may idle forever.
    let idle_timeout = match flags.get("idle-timeout") {
        None => None,
        Some(_) => {
            let secs: u64 = get(&flags, "idle-timeout", 30)?;
            if secs == 0 {
                return Err(err("--idle-timeout must be at least 1 second"));
            }
            Some(std::time::Duration::from_secs(secs))
        }
    };
    // --proto v1 caps the server at the line protocol: v2 negotiation
    // attempts get the typed `ERR parse` reply instead of an upgrade.
    let max_proto = proto_flag(&flags)?;
    // --reactor-threads N sets the event-loop shard count; 0 (the
    // default) sizes to the host's available parallelism.
    let reactor_threads: usize = get(&flags, "reactor-threads", 0)?;
    Ok(ServeConfig {
        addr,
        max_connections,
        idle_timeout,
        max_proto,
        reactor_threads,
    })
}

/// `acmr serve` — bind the live serving front end and block until the
/// process is killed. Startup lines go to **stderr** (stdout stays
/// clean for scripting): first the machine-parseable `LISTENING
/// <addr>` line naming the resolved address — so `--addr HOST:0` is
/// usable, the chosen port is discoverable, and
/// `WorkerPool::spawn_local` (the `acmr run --cluster` path) can
/// adopt the worker without scraping prose — then the human-readable
/// line. `tests/serve_cli.rs` pins the order and shape. Wire
/// protocol: `docs/SERVING.md`; operator guide: `docs/OPERATIONS.md`.
pub fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let config = serve_options(args)?;
    let handle = crate::serve::serve(default_registry(), config).map_err(|e| err(e.to_string()))?;
    eprintln!("{LISTENING_PREFIX}{}", handle.local_addr());
    eprintln!(
        "acmr-serve listening on {} (protocol: docs/SERVING.md; Ctrl-C to stop)",
        handle.local_addr()
    );
    handle.wait();
    Ok(String::new())
}

/// `acmr client --stream <file|->` — replay a trace through a serving
/// endpoint: the loopback (or remote) twin of `acmr run --stream`.
/// Returns the session's final report in `--format text|json`;
/// `--events` additionally **streams** every audited decision event to
/// `events_out` as one JSON line, in arrival order, as it happens — a
/// multi-million-request replay never buffers its event log (the
/// binary passes stdout; tests pass a `Vec<u8>`). Served reports carry
/// **no** offline-optimum context (a live session cannot see the
/// future); replay the saved trace through `acmr run` for bounds.
pub fn cmd_client(
    args: &[String],
    stdin: &mut dyn Read,
    events_out: &mut dyn std::io::Write,
) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_ADDR.to_string());
    // `--stats` probes the server's counters instead of replaying a
    // trace — no stdin, no session (`acmr stats --addr` is the
    // standalone spelling of the same exchange).
    if flags.contains_key("stats") {
        let report = crate::serve::fetch_stats(addr.as_str()).map_err(|e| err(e.to_string()))?;
        return render_stats_report(&report, &flags);
    }
    let target = match flags.get("stream").map(String::as_str) {
        Some("true") | None => {
            return Err(err(
                "client needs --stream <file|-> (the trace to replay through the server)",
            ))
        }
        Some(target) => target.to_string(),
    };
    let alg_spec = flags
        .get("alg")
        .map(String::as_str)
        .unwrap_or(DEFAULT_ALGORITHM);
    let base_seed: Option<u64> = match flags.get("seed") {
        None => None,
        Some(_) => Some(get(&flags, "seed", 0)?),
    };
    let batch = batch_flag(&flags)?;
    let proto = proto_flag(&flags)?;
    let print_events = flags.contains_key("events");

    let mut write_error: Option<std::io::Error> = None;
    let report = {
        let mut on_event = |event: &crate::core::ArrivalEvent| {
            if !print_events || write_error.is_some() {
                return;
            }
            let written = serde_json::to_string(event)
                .map_err(std::io::Error::other)
                .and_then(|json| writeln!(events_out, "{json}"));
            if let Err(e) = written {
                write_error = Some(e);
            }
        };
        // One replay body for either source; --proto picks the wire.
        // v2 without --events runs in batch-summary mode (the server
        // never serializes per-arrival events at all); with --events
        // it negotiates events=on and streams them exactly like v1.
        let mut replay = |arrivals: &mut dyn Iterator<
            Item = Result<crate::core::Request, crate::core::AcmrError>,
        >,
                          capacities: &[u32]| match proto {
            ProtoVersion::V1 => serve_trace(
                addr.as_str(),
                alg_spec,
                base_seed,
                capacities,
                arrivals,
                batch,
                &mut on_event,
            ),
            ProtoVersion::V2 => serve_trace_v2(
                addr.as_str(),
                alg_spec,
                base_seed,
                capacities,
                arrivals,
                batch,
                print_events,
                &mut on_event,
            ),
        };
        if target == "-" {
            let reader = TraceReader::new(stdin).map_err(|e| err(e.to_string()))?;
            let capacities = reader.capacities().to_vec();
            replay(&mut reader.into_iter(), &capacities)
        } else {
            // Either trace format: sniffed, binary replays off an mmap.
            let reader = open_trace(&target).map_err(|e| err(e.to_string()))?;
            let capacities = reader.capacities().to_vec();
            replay(&mut reader.into_iter(), &capacities)
        }
        .map_err(|e| err(e.to_string()))?
    };
    if let Some(e) = write_error {
        return Err(err(format!("cannot write event stream: {e}")));
    }
    render_report(&report, &flags)
}

/// Top-level dispatch over a raw stdin byte stream; only the commands
/// that need stdin touch it, and `run --stream -` reads it **chunked**
/// instead of slurping. Returns the stdout payload.
pub fn dispatch_io(argv: &[String], stdin: &mut dyn Read) -> Result<String, CliError> {
    let slurp = |stdin: &mut dyn Read| -> Result<String, CliError> {
        let mut text = String::new();
        stdin
            .read_to_string(&mut text)
            .map_err(|e| err(format!("could not read trace from stdin: {e}")))?;
        Ok(text)
    };
    // `stats` accepts binary traces, so its stdin is raw bytes.
    let slurp_bytes = |stdin: &mut dyn Read| -> Result<Vec<u8>, CliError> {
        let mut bytes = Vec::new();
        stdin
            .read_to_end(&mut bytes)
            .map_err(|e| err(format!("could not read trace from stdin: {e}")))?;
        Ok(bytes)
    };
    match argv.first().map(String::as_str) {
        Some("gen") => cmd_gen(&argv[1..]),
        // `stats --addr` probes a live server and must not block on
        // stdin; plain `stats` summarizes a trace piped in.
        Some("stats") => {
            if parse_flags(&argv[1..])?.contains_key("addr") {
                cmd_stats_remote(&argv[1..])
            } else {
                cmd_stats(&slurp_bytes(stdin)?)
            }
        }
        Some("convert") => cmd_convert(&argv[1..]),
        Some("opt") => cmd_opt(&slurp(stdin)?),
        Some("algs") => cmd_algs(),
        Some("run") => {
            let args = &argv[1..];
            match parse_flags(args)?.get("stream").map(String::as_str) {
                None => cmd_run(args, &slurp(stdin)?),
                Some("true") => Err(err(
                    "--stream needs a trace file path, or `-` to stream stdin",
                )),
                Some(target) => {
                    let target = target.to_string();
                    cmd_run_stream(args, stdin, &target)
                }
            }
        }
        Some("serve") => cmd_serve(&argv[1..]),
        Some("client") => {
            // Events stream to stdout as they happen (the report — the
            // returned string — is printed after them by the shim).
            cmd_client(&argv[1..], stdin, &mut std::io::stdout())
        }
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(err(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

/// [`dispatch_io`] over an in-memory stdin string — the test-friendly
/// shape (kept from before streaming existed).
pub fn dispatch(argv: &[String], stdin: &str) -> Result<String, CliError> {
    dispatch_io(argv, &mut stdin.as_bytes())
}

/// CLI usage text — the single source the README's usage block is
/// generated from (`tests/readme_sync.rs` pins them together, so help
/// and README cannot drift).
pub const USAGE: &str =
    "acmr — admission control to minimize rejections (Alon–Azar–Gutner, SPAA 2005)

USAGE:
  acmr gen  [--topology line|grid|tree|adversarial|lower-bound|stochastic
            |buyback-hostile]
            [--m N] [--cap C] [--overload F] [--seed S] [--weighted]
            [--max-hops H]                             # trace to stdout
            [--format text|binary] [--out FILE]
            adversarial: [--family nested|hot-edge|squeeze] [--rounds R]
            [--shrink K] [--total T] [--width W] [--hits H]
            lower-bound: [--levels L] [--rounds R]     (dyadic intervals)
            stochastic: [--model iid|mmpp|diurnal|flash]
            [--arrival-rate F] [--duration T] [--period P]
            [--amplitude A] [--width W] [--boost B]
            seeded traffic simulator over a line network: Poisson
            sessions with heavy-tailed sizes and path widths under
            the chosen arrival process (constant, Markov-modulated,
            sinusoidal, flash crowds)
            buyback-hostile: [--waves W] [--growth G]
            geometric cost-escalation waves that punish non-preempting
            algorithms (pair with the `buyback?factor=F` policy, which
            pays factor*cost per cancellation — see `acmr algs`)
            --format binary emits the mmap-able ACMR-TRACE v2 records
            (raw bytes, so it requires --out FILE; text defaults to
            stdout, or to --out when given)
  acmr stats                                           # trace from stdin
            accepts both formats (the leading magic picks the parser),
            reports which one it saw, and refuses unknown magics with
            a typed error instead of mis-parsing
  acmr stats --addr HOST:PORT [--format text|json]     # probe a server
            asks a live `acmr serve` endpoint for its counters
            (connections, sessions, arrivals, bytes, errors, busy
            rejections, uptime) over the sessionless STATS exchange
  acmr convert IN OUT [--to text|binary]               # rewrite a trace
            losslessly converts between the text and binary formats,
            streaming (traces larger than memory convert fine); --to
            defaults to the opposite of the input's format; IN and OUT
            must be different files (in-place would truncate the input)
  acmr opt                                             # trace from stdin
  acmr algs                                            # list algorithms
  acmr run  [--alg SPEC] [--seed S] [--batch N] [--format text|json]
            [--stream FILE|-] [--cluster N | --workers ADDR,ADDR]
            [--proto v1|v2]
            SPEC: a registry name with optional options, e.g.
            'aag-unweighted?seed=7&no-prune' — see `acmr algs`
            --batch N feeds arrivals through the batched session path
            (identical report, amortized processing)  # trace from stdin
            --stream FILE|- ingests the trace in chunks without ever
            holding it in memory (`-` streams stdin); reports are
            byte-identical to the in-memory path
            --cluster N spawns N local `acmr serve` worker processes
            and replays the run through them (OPT bounds still local;
            reports byte-identical to the in-process path); --workers
            adopts pre-started serving endpoints instead. Worker
            failures retry on survivors, bounded, with typed errors
  acmr serve  [--addr HOST:PORT] [--max-conns N]       # live front end
            [--idle-timeout SECS] [--proto v1|v2] [--reactor-threads N]
            serves the ACMR-SERVE socket protocol: one admission
            session per connection, one audited decision event per
            arrival (default addr 127.0.0.1:4790; --addr HOST:0 picks
            an ephemeral port; stderr's first line is the machine-
            parseable `LISTENING HOST:PORT`; --idle-timeout bounds
            how long a silent peer may hold a connection slot;
            --proto v1 caps sessions at the line protocol — by default
            clients may negotiate the v2 binary-frame dialect).
            Connections are multiplexed across --reactor-threads
            event-loop shards (0, the default, sizes to the host);
            past --max-conns a connection gets one typed `ERR busy`
            reply and a polite close — see docs/OPERATIONS.md
  acmr client --stream FILE|- [--addr HOST:PORT] [--alg SPEC]
            [--seed S] [--batch N] [--format text|json] [--events]
            [--proto v1|v2]
            replays a trace through a serving endpoint and prints the
            session's final report (--events also prints every decision
            event as a JSON line); served reports carry no offline
            OPT bound — replay the trace through `acmr run` for one.
            --proto defaults to v2 (binary frames, batch-summary acks;
            arrival frames are exactly ACMR-TRACE v2 record bytes);
            force v1 against servers that predate the v2 dialect
  acmr client --stats [--addr HOST:PORT] [--format text|json]
            probes the endpoint's STATS counters without replaying
            anything — shorthand for `acmr stats --addr HOST:PORT`

Traces come in two interconvertible dialects, both specified in
docs/TRACE_FORMAT.md: the plain-text `ACMR-TRACE v1` grammar `acmr gen`
emits by default, and the binary mmap-able `ACMR-TRACE v2` record
format (`acmr gen --format binary`, `acmr convert`) that file-backed
commands (`run --stream FILE`, `client --stream FILE`, sweeps) replay
zero-copy off a memory map. Every file-taking command sniffs the
leading magic, so both formats work everywhere a trace file does. The
serving wire protocol (handshake, frames, error replies, shutdown
semantics) is specified in docs/SERVING.md; docs/OPERATIONS.md is the
operator guide to running `acmr serve`.
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{AlgorithmSpec, RunReport};
    use proptest::prelude::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn gen_stats_opt_run_pipeline() {
        let trace = cmd_gen(&argv(&["--m", "16", "--cap", "2", "--seed", "5"])).unwrap();
        assert!(trace.starts_with("ACMR-TRACE v1"));
        let stats = cmd_stats(trace.as_bytes()).unwrap();
        assert!(stats.contains("edges           : 16"));
        let opt = cmd_opt(&trace).unwrap();
        assert!(opt.starts_with("opt "));
        let run = cmd_run(&argv(&["--alg", "aag-unweighted", "--seed", "1"]), &trace).unwrap();
        assert!(run.contains("ratio"));
        // The seed actually used is echoed, making the report
        // reproducible from its own text.
        assert!(run.contains("seed           : 1"), "{run}");
    }

    #[test]
    fn weighted_gen_has_varied_costs() {
        let trace = cmd_gen(&argv(&["--m", "16", "--weighted", "--seed", "3"])).unwrap();
        let stats = cmd_stats(trace.as_bytes()).unwrap();
        assert!(stats.contains("unweighted      : false"));
    }

    #[test]
    fn json_report_round_trips() {
        let trace = cmd_gen(&argv(&["--m", "12", "--cap", "2", "--seed", "9"])).unwrap();
        let json = cmd_run(
            &argv(&["--alg", "greedy", "--seed", "3", "--format", "json"]),
            &trace,
        )
        .unwrap();
        let report: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report.algorithm, "greedy");
        assert_eq!(report.seed, Some(3));
        assert!(report.opt.is_some());
        // And back again, identically.
        let again = serde_json::to_string_pretty(&report).unwrap() + "\n";
        assert_eq!(again, json);
    }

    #[test]
    fn spec_seed_overrides_flag_seed() {
        let trace = cmd_gen(&argv(&["--m", "10", "--cap", "2", "--seed", "2"])).unwrap();
        let out = cmd_run(
            &argv(&["--alg", "aag-unweighted?seed=9", "--seed", "1"]),
            &trace,
        )
        .unwrap();
        assert!(out.contains("seed           : 9"), "{out}");
    }

    #[test]
    fn algs_lists_every_registered_name() {
        let listing = cmd_algs().unwrap();
        for name in default_registry().names() {
            assert!(listing.contains(name), "{name} missing from listing");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Every registered algorithm (no hard-coded list: the registry
        /// itself is enumerated) round-trips through `AlgorithmSpec`
        /// parsing and runs feasibly on a smoke trace from every
        /// topology × weighting combination.
        #[test]
        fn registry_round_trips_and_runs_on_smoke_traces(
            topology in prop_oneof![Just("line"), Just("grid"), Just("tree")],
            weighted in prop_oneof![Just(true), Just(false)],
            seed in 0u64..1000,
        ) {
            let mut gen_args = vec![
                "--m".to_string(), "12".to_string(),
                "--cap".to_string(), "2".to_string(),
                "--seed".to_string(), seed.to_string(),
                "--topology".to_string(), topology.to_string(),
            ];
            if weighted {
                gen_args.push("--weighted".to_string());
            }
            let trace = cmd_gen(&gen_args).unwrap();
            for name in default_registry().names() {
                // Spec round-trip: name parses, canonicalizes, reparses.
                let spec = AlgorithmSpec::parse(name).unwrap();
                prop_assert_eq!(&AlgorithmSpec::parse(&spec.canonical()).unwrap(), &spec);
                let with_seed = AlgorithmSpec::parse(&format!("{name}?seed={seed}")).unwrap();
                prop_assert_eq!(with_seed.seed().unwrap(), Some(seed));
                // And the algorithm actually runs (feasibility audited
                // inside the Session; any violation would error here).
                let out = cmd_run(
                    &argv(&["--alg", name, "--seed", &seed.to_string()]),
                    &trace,
                ).unwrap();
                prop_assert!(out.contains(name), "missing name in {}", out);
            }
        }
    }

    #[test]
    fn adversarial_topologies_generate_and_run() {
        // Every hostile family produces a parseable trace that every
        // registered algorithm survives (audited inside the Session).
        for gen_args in [
            argv(&["--topology", "adversarial", "--m", "12", "--cap", "2"]),
            argv(&[
                "--topology",
                "adversarial",
                "--family",
                "hot-edge",
                "--m",
                "6",
                "--cap",
                "2",
                "--total",
                "9",
            ]),
            argv(&[
                "--topology",
                "adversarial",
                "--family",
                "squeeze",
                "--m",
                "12",
                "--cap",
                "3",
                "--width",
                "4",
                "--hits",
                "2",
            ]),
            argv(&["--topology", "lower-bound", "--m", "16", "--cap", "3"]),
            argv(&[
                "--topology",
                "lower-bound",
                "--levels",
                "3",
                "--rounds",
                "3",
            ]),
            argv(&[
                "--topology",
                "buyback-hostile",
                "--m",
                "4",
                "--cap",
                "2",
                "--waves",
                "3",
                "--growth",
                "4",
            ]),
        ] {
            let trace = cmd_gen(&gen_args).unwrap();
            let stats = cmd_stats(trace.as_bytes()).unwrap();
            assert!(stats.contains("max edge excess"), "{stats}");
            for name in default_registry().names() {
                cmd_run(&argv(&["--alg", name, "--seed", "2"]), &trace).unwrap();
            }
        }
        // --m 16 defaults lower-bound to levels 4 (16 dyadic edges).
        let trace = cmd_gen(&argv(&["--topology", "lower-bound", "--m", "16"])).unwrap();
        assert!(cmd_stats(trace.as_bytes())
            .unwrap()
            .contains("edges           : 16"));
        // A huge --m clamps the default levels to the generator's
        // ceiling instead of erroring about a flag the user never set.
        let trace = cmd_gen(&argv(&[
            "--topology",
            "lower-bound",
            "--m",
            "200000",
            "--rounds",
            "1",
        ]))
        .unwrap();
        assert!(cmd_stats(trace.as_bytes())
            .unwrap()
            .contains("edges           : 65536"));
    }

    #[test]
    fn adversarial_flag_errors_are_reported() {
        let adv = |rest: &[&str]| {
            let mut a = vec!["--topology".to_string(), "adversarial".to_string()];
            a.extend(rest.iter().map(|s| s.to_string()));
            cmd_gen(&a)
        };
        let e = adv(&["--family", "torus"]).unwrap_err();
        assert!(e.to_string().contains("unknown adversarial family"), "{e}");
        let e = adv(&["--family", "squeeze", "--cap", "2", "--hits", "5"]).unwrap_err();
        assert!(e.to_string().contains("exceeds --cap"), "{e}");
        let e = adv(&["--family", "squeeze", "--m", "8", "--width", "9"]).unwrap_err();
        assert!(e.to_string().contains("--width"), "{e}");
        assert!(adv(&["--m", "1"]).is_err());
        assert!(adv(&["--rounds", "0"]).is_err());
        assert!(adv(&["--shrink", "0"]).is_err());
        // --family without the adversarial topology is a usage error —
        // including with lower-bound, which would otherwise silently
        // drop it.
        let e = cmd_gen(&argv(&["--family", "nested"])).unwrap_err();
        assert!(e.to_string().contains("--family only applies"), "{e}");
        let e = cmd_gen(&argv(&["--topology", "lower-bound", "--family", "nested"])).unwrap_err();
        assert!(e.to_string().contains("--family only applies"), "{e}");
        // hot-edge's default --total saturates instead of overflowing.
        assert!(adv(&[
            "--family",
            "hot-edge",
            "--cap",
            "4000000000",
            "--total",
            "2"
        ])
        .is_ok());
        // lower-bound level bounds.
        let e = cmd_gen(&argv(&["--topology", "lower-bound", "--levels", "17"])).unwrap_err();
        assert!(e.to_string().contains("--levels"), "{e}");
        assert!(cmd_gen(&argv(&["--topology", "lower-bound", "--levels", "0"])).is_err());
        assert!(cmd_gen(&argv(&["--topology", "lower-bound", "--rounds", "0"])).is_err());
        // --cap 0 is rejected up front for every topology (the trace
        // format forbids zero capacities, and the deterministic
        // generators would otherwise assert).
        for topo in [
            "line",
            "grid",
            "tree",
            "adversarial",
            "lower-bound",
            "stochastic",
            "buyback-hostile",
        ] {
            let e = cmd_gen(&argv(&["--topology", topo, "--cap", "0"])).unwrap_err();
            assert!(e.to_string().contains("--cap"), "{topo}: {e}");
        }
    }

    #[test]
    fn buyback_hostile_gen_generates_and_validates_flags() {
        let bb = |rest: &[&str]| {
            let mut a = vec!["--topology".to_string(), "buyback-hostile".to_string()];
            a.extend(rest.iter().map(|s| s.to_string()));
            cmd_gen(&a)
        };
        // waves × m × cap singleton requests, deterministically.
        let args = ["--m", "4", "--cap", "2", "--waves", "3"];
        let trace = bb(&args).unwrap();
        let stats = cmd_stats(trace.as_bytes()).unwrap();
        assert!(stats.contains("edges           : 4"), "{stats}");
        assert!(stats.contains("requests        : 24"), "{stats}");
        assert_eq!(trace, bb(&args).unwrap(), "gen must be deterministic");
        // Flag validation: typed errors pointing at the help text, NaN
        // included.
        for bad in [
            &["--waves", "1"][..],
            &["--growth", "1.0"][..],
            &["--growth", "nan"][..],
            &["--growth", "inf"][..],
            &["--m", "0"][..],
        ] {
            assert!(bb(bad).is_err(), "{bad:?}");
        }
        let e = bb(&["--growth", "0.5"]).unwrap_err();
        assert!(e.to_string().contains("--growth"), "{e}");
        assert!(e.to_string().contains("acmr help"), "{e}");
        // --waves/--growth without the topology are usage errors, like
        // --family and --model.
        for misplaced in [&["--waves", "3"][..], &["--growth", "3"][..]] {
            let e = cmd_gen(&argv(misplaced)).unwrap_err();
            assert!(e.to_string().contains("only applies"), "{e}");
            assert!(e.to_string().contains("acmr help"), "{e}");
        }
    }

    #[test]
    fn stochastic_gen_generates_and_validates_flags() {
        // Every model produces a parseable trace, deterministically.
        for model in ["iid", "mmpp", "diurnal", "flash"] {
            let args = argv(&[
                "--topology",
                "stochastic",
                "--model",
                model,
                "--m",
                "24",
                "--cap",
                "3",
                "--duration",
                "48",
                "--seed",
                "9",
            ]);
            let trace = cmd_gen(&args).unwrap();
            assert!(
                cmd_stats(trace.as_bytes())
                    .unwrap()
                    .contains("edges           : 24"),
                "{model}: stats reject the generated trace"
            );
            assert_eq!(trace, cmd_gen(&args).unwrap(), "{model}: not deterministic");
        }
        // Unknown model and misplaced --model are typed errors pointing
        // at the help text.
        let e = cmd_gen(&argv(&["--topology", "stochastic", "--model", "fractal"])).unwrap_err();
        assert!(e.to_string().contains("unknown stochastic model"), "{e}");
        assert!(e.to_string().contains("acmr help"), "{e}");
        for topo in &[
            &["--model", "iid"][..],
            &["--topology", "line", "--model", "iid"][..],
        ] {
            let e = cmd_gen(&argv(topo)).unwrap_err();
            assert!(e.to_string().contains("--model only applies"), "{e}");
            assert!(e.to_string().contains("acmr help"), "{e}");
        }
        // --family errors point at the help text too.
        let e = cmd_gen(&argv(&["--family", "nested"])).unwrap_err();
        assert!(e.to_string().contains("acmr help"), "{e}");
        // Model-parameter validation surfaces as typed errors, not
        // generator panics.
        let stoch = |rest: &[&str]| {
            let mut a = vec!["--topology".to_string(), "stochastic".to_string()];
            a.extend(rest.iter().map(|s| s.to_string()));
            cmd_gen(&a)
        };
        assert!(stoch(&["--arrival-rate", "0"]).is_err());
        assert!(stoch(&["--arrival-rate", "nan"]).is_err());
        assert!(stoch(&["--duration", "0"]).is_err());
        assert!(stoch(&["--model", "diurnal", "--amplitude", "1.5"]).is_err());
        assert!(stoch(&["--model", "diurnal", "--period", "1"]).is_err());
        assert!(stoch(&["--model", "flash", "--width", "64"]).is_err());
        assert!(stoch(&["--model", "flash", "--boost", "1.0"]).is_err());
        assert!(stoch(&["--m", "1"]).is_err());
        // NaN is rejected by every float flag, not just --arrival-rate
        // (regression: --boost and --overload accepted it silently).
        assert!(stoch(&["--model", "diurnal", "--amplitude", "nan"]).is_err());
        assert!(stoch(&["--model", "flash", "--boost", "nan"]).is_err());
        for bad in ["nan", "inf", "0", "-2"] {
            let e = cmd_gen(&argv(&["--overload", bad])).unwrap_err();
            assert!(e.to_string().contains("--overload"), "{bad}: {e}");
            assert!(e.to_string().contains("acmr help"), "{bad}: {e}");
        }
    }

    #[test]
    fn batched_run_output_is_identical_to_streaming() {
        let trace = cmd_gen(&argv(&[
            "--m",
            "16",
            "--cap",
            "2",
            "--seed",
            "8",
            "--weighted",
        ]))
        .unwrap();
        for alg in ["greedy", "aag-weighted"] {
            let streaming = cmd_run(
                &argv(&["--alg", alg, "--seed", "4", "--format", "json"]),
                &trace,
            )
            .unwrap();
            for batch in ["1", "7", "1000"] {
                let batched = cmd_run(
                    &argv(&[
                        "--alg", alg, "--seed", "4", "--format", "json", "--batch", batch,
                    ]),
                    &trace,
                )
                .unwrap();
                assert_eq!(batched, streaming, "{alg} batch {batch}");
            }
        }
        // Batch 0 and non-numeric batch are usage errors.
        let e = cmd_run(&argv(&["--batch", "0"]), &trace).unwrap_err();
        assert!(e.to_string().contains("batch size"), "{e}");
        assert!(cmd_run(&argv(&["--batch", "lots"]), &trace).is_err());
    }

    #[test]
    fn streamed_run_is_byte_identical_to_in_memory_run() {
        // The committed golden trace is the reference input: stream it
        // from its file and from simulated stdin, and require the
        // byte-identical report the in-memory path prints.
        let golden = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/adv-squeeze.trace"
        );
        let trace = std::fs::read_to_string(golden).unwrap();
        for format in ["text", "json"] {
            for alg in ["greedy", "aag-weighted"] {
                let in_memory = cmd_run(
                    &argv(&["--alg", alg, "--seed", "4", "--format", format]),
                    &trace,
                )
                .unwrap();
                // --stream <file>: two passes over the file.
                let from_file = dispatch(
                    &argv(&[
                        "run", "--alg", alg, "--seed", "4", "--format", format, "--stream", golden,
                    ]),
                    "", // stdin unused
                )
                .unwrap();
                assert_eq!(from_file, in_memory, "{alg} --format {format} file");
                // --stream -: chunked stdin, spilled for pass 2.
                let from_stdin = dispatch(
                    &argv(&[
                        "run", "--alg", alg, "--seed", "4", "--format", format, "--stream", "-",
                    ]),
                    &trace,
                )
                .unwrap();
                assert_eq!(from_stdin, in_memory, "{alg} --format {format} stdin");
                // And batched streaming stays identical too.
                let batched = dispatch(
                    &argv(&[
                        "run", "--alg", alg, "--seed", "4", "--format", format, "--stream", "-",
                        "--batch", "7",
                    ]),
                    &trace,
                )
                .unwrap();
                assert_eq!(batched, in_memory, "{alg} --format {format} batched");
            }
        }
    }

    #[test]
    fn streamed_run_flag_errors_are_reported() {
        // Bare --stream has no target.
        let e = dispatch(&argv(&["run", "--stream"]), "").unwrap_err();
        assert!(e.to_string().contains("--stream needs"), "{e}");
        // Missing file: typed I/O error, mentioning the path.
        let e = dispatch(&argv(&["run", "--stream", "/no/such.trace"]), "").unwrap_err();
        assert!(e.to_string().contains("/no/such.trace"), "{e}");
        // Malformed stdin stream: the parse error carries the line and
        // points at the format spec.
        let e = dispatch(&argv(&["run", "--stream", "-"]), "ACMR-TRACE v9\n").unwrap_err();
        assert!(e.to_string().contains("docs/TRACE_FORMAT.md"), "{e}");
        // cmd_run proper refuses --stream (it has no byte stream).
        assert!(cmd_run(&argv(&["--stream", "-"]), "x").is_err());
    }

    #[test]
    fn binary_gen_convert_stats_run_pipeline() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let p = |name: &str| {
            dir.join(format!("acmr-cli-bin-{pid}-{name}"))
                .to_str()
                .unwrap()
                .to_string()
        };
        let (text_path, bin_path, bin2_path, text2_path) =
            (p("a.trace"), p("a.bin"), p("b.bin"), p("b.trace"));

        // gen --out writes the file and prints nothing.
        let gen_args = &["--m", "16", "--cap", "2", "--seed", "5", "--weighted"];
        let mut args = argv(gen_args);
        args.extend(argv(&["--out", &text_path]));
        assert_eq!(cmd_gen(&args).unwrap(), "");
        // …and matches stdout generation exactly.
        assert_eq!(
            std::fs::read_to_string(&text_path).unwrap(),
            cmd_gen(&argv(gen_args)).unwrap()
        );
        // gen --format binary requires --out (stdout is text-only).
        let mut args = argv(gen_args);
        args.extend(argv(&["--format", "binary"]));
        let e = cmd_gen(&args).unwrap_err();
        assert!(e.to_string().contains("--out"), "{e}");
        args.extend(argv(&["--out", &bin_path]));
        assert_eq!(cmd_gen(&args).unwrap(), "");

        // stats reads both formats, reports which it saw, and agrees
        // on every other line.
        let text = std::fs::read(&text_path).unwrap();
        let bin = std::fs::read(&bin_path).unwrap();
        let st = cmd_stats(&text).unwrap();
        let sb = cmd_stats(&bin).unwrap();
        assert!(
            st.contains("format          : ACMR-TRACE v1 (text)"),
            "{st}"
        );
        assert!(
            sb.contains("format          : ACMR-TRACE v2 (binary)"),
            "{sb}"
        );
        assert_eq!(
            st.lines().skip(1).collect::<Vec<_>>(),
            sb.lines().skip(1).collect::<Vec<_>>()
        );
        // Unknown magic: typed refusal pointing at the spec, not a
        // text mis-parse.
        let e = cmd_stats(b"\x7fELF junk").unwrap_err();
        assert!(e.to_string().contains("docs/TRACE_FORMAT.md"), "{e}");
        assert!(e.to_string().contains("unrecognized trace magic"), "{e}");

        // convert text→binary (default --to flips the format) equals
        // direct binary generation; binary→text reproduces the
        // original text byte for byte.
        let summary = cmd_convert(&argv(&[&text_path, &bin2_path])).unwrap();
        assert!(summary.contains("ACMR-TRACE v2 (binary)"), "{summary}");
        assert_eq!(std::fs::read(&bin2_path).unwrap(), bin);
        cmd_convert(&argv(&[&bin_path, &text2_path, "--to", "text"])).unwrap();
        assert_eq!(std::fs::read(&text2_path).unwrap(), text);

        // run --stream replays the binary trace (zero-copy) with a
        // byte-identical report to the text path.
        let stream = |path: &str| {
            dispatch(
                &argv(&[
                    "run",
                    "--alg",
                    "aag-weighted",
                    "--seed",
                    "4",
                    "--format",
                    "json",
                    "--stream",
                    path,
                ]),
                "",
            )
            .unwrap()
        };
        assert_eq!(stream(&bin_path), stream(&text_path));

        // convert usage errors.
        assert!(cmd_convert(&argv(&[&text_path])).is_err());
        let e = cmd_convert(&argv(&[&text_path, &bin2_path, "--to", "yaml"])).unwrap_err();
        assert!(e.to_string().contains("--to"), "{e}");
        let e = cmd_convert(&argv(&["/no/such.trace", &bin2_path])).unwrap_err();
        assert!(e.to_string().contains("/no/such.trace"), "{e}");

        for path in [text_path, bin_path, bin2_path, text2_path] {
            std::fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn serve_flag_errors_are_reported_without_binding() {
        // Defaults resolve.
        let config = serve_options(&[]).unwrap();
        assert_eq!(config.addr, crate::serve::DEFAULT_ADDR);
        assert_eq!(config.max_connections, 1024);
        assert_eq!(config.idle_timeout, None);
        let config = serve_options(&argv(&[
            "--addr",
            "0.0.0.0:9",
            "--max-conns",
            "4",
            "--idle-timeout",
            "30",
        ]))
        .unwrap();
        assert_eq!(config.addr, "0.0.0.0:9");
        assert_eq!(config.max_connections, 4);
        assert_eq!(
            config.idle_timeout,
            Some(std::time::Duration::from_secs(30))
        );
        // Typed flag errors.
        let e = serve_options(&argv(&["--max-conns", "0"])).unwrap_err();
        assert!(e.to_string().contains("--max-conns"), "{e}");
        assert!(serve_options(&argv(&["--max-conns", "lots"])).is_err());
        let e = serve_options(&argv(&["--idle-timeout", "0"])).unwrap_err();
        assert!(e.to_string().contains("--idle-timeout"), "{e}");
        assert!(serve_options(&argv(&["--idle-timeout", "soon"])).is_err());
        let e = serve_options(&argv(&["--port", "7"])).unwrap_err();
        assert!(e.to_string().contains("unknown serve flag"), "{e}");
        // An unbindable address is a typed error, not a panic.
        let e = cmd_serve(&argv(&["--addr", "256.256.256.256:1"])).unwrap_err();
        assert!(e.to_string().contains("cannot bind"), "{e}");
    }

    #[test]
    fn client_replays_traces_through_a_live_server() {
        // In-process server; the CLI client speaks to it over loopback.
        let handle = crate::serve::serve(
            default_registry(),
            crate::serve::ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = handle.local_addr().to_string();
        let trace = cmd_gen(&argv(&["--m", "12", "--cap", "2", "--seed", "6"])).unwrap();

        // The served report equals the in-memory run minus the OPT
        // context a live session cannot compute.
        let mut expected: RunReport = serde_json::from_str(
            &cmd_run(
                &argv(&["--alg", "greedy", "--seed", "2", "--format", "json"]),
                &trace,
            )
            .unwrap(),
        )
        .unwrap();
        expected.opt = None;
        let expected_json = serde_json::to_string_pretty(&expected).unwrap() + "\n";

        // --stream - (stdin) and --batch N must both match.
        for extra in [&[][..], &["--batch", "5"][..]] {
            let mut args = argv(&[
                "client", "--stream", "-", "--addr", &addr, "--alg", "greedy", "--seed", "2",
                "--format", "json",
            ]);
            args.extend(extra.iter().map(|s| s.to_string()));
            let out = dispatch(&args, &trace).unwrap();
            assert_eq!(out, expected_json, "extra flags {extra:?}");
        }

        // --events streams one JSON decision line per arrival into the
        // events sink (stdout in the binary), ahead of the report.
        let mut events_sink = Vec::new();
        let out = cmd_client(
            &argv(&[
                "--stream", "-", "--addr", &addr, "--alg", "greedy", "--seed", "2", "--events",
            ]),
            &mut trace.as_bytes(),
            &mut events_sink,
        )
        .unwrap();
        let events_text = String::from_utf8(events_sink).unwrap();
        let event_lines = events_text.lines().filter(|l| l.starts_with('{')).count();
        assert_eq!(event_lines, expected.requests, "{events_text}");
        assert!(out.contains("algorithm      : greedy"), "{out}");
        assert!(!out.contains('{'), "report must not carry events: {out}");

        // Usage errors.
        let e = dispatch(&argv(&["client"]), "").unwrap_err();
        assert!(e.to_string().contains("--stream"), "{e}");
        let e = dispatch(&argv(&["client", "--stream"]), "").unwrap_err();
        assert!(e.to_string().contains("--stream"), "{e}");
        // Server-side failures come back as typed remote errors.
        let e = dispatch(
            &argv(&["client", "--stream", "-", "--addr", &addr, "--alg", "nope"]),
            &trace,
        )
        .unwrap_err();
        assert!(e.to_string().contains("unknown-algorithm"), "{e}");
        handle.shutdown();
    }

    #[test]
    fn client_without_a_server_reports_a_typed_error() {
        // Nothing listens on this port (bind-then-drop reserves one).
        let addr = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().to_string()
        };
        let trace = cmd_gen(&argv(&["--m", "4", "--cap", "1"])).unwrap();
        let e = dispatch(&argv(&["client", "--stream", "-", "--addr", &addr]), &trace).unwrap_err();
        assert!(e.to_string().contains("cannot connect"), "{e}");
    }

    #[test]
    fn workers_flag_runs_byte_identically_through_adopted_servers() {
        // Two in-process serving workers; `acmr run --workers a,b`
        // must produce the byte-identical report (OPT context
        // included — bounds are computed locally) to plain `acmr run`.
        let w1 = crate::serve::serve(
            default_registry(),
            crate::serve::ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..Default::default()
            },
        )
        .unwrap();
        let w2 = crate::serve::serve(
            default_registry(),
            crate::serve::ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..Default::default()
            },
        )
        .unwrap();
        let workers = format!("{},{}", w1.local_addr(), w2.local_addr());
        let trace = cmd_gen(&argv(&["--m", "12", "--cap", "2", "--seed", "6"])).unwrap();
        for format in ["text", "json"] {
            let expected = cmd_run(
                &argv(&["--alg", "aag-weighted", "--seed", "3", "--format", format]),
                &trace,
            )
            .unwrap();
            let clustered = cmd_run(
                &argv(&[
                    "--alg",
                    "aag-weighted",
                    "--seed",
                    "3",
                    "--format",
                    format,
                    "--workers",
                    &workers,
                ]),
                &trace,
            )
            .unwrap();
            assert_eq!(clustered, expected, "--format {format}");
            // And batched framing does not change the report either.
            let batched = cmd_run(
                &argv(&[
                    "--alg",
                    "aag-weighted",
                    "--seed",
                    "3",
                    "--format",
                    format,
                    "--workers",
                    &workers,
                    "--batch",
                    "5",
                ]),
                &trace,
            )
            .unwrap();
            assert_eq!(batched, expected, "--format {format} --batch 5");
        }
        // A worker-side failure surfaces as a typed error, not a panic.
        let e = cmd_run(&argv(&["--alg", "nope", "--workers", &workers]), &trace).unwrap_err();
        assert!(e.to_string().contains("unknown-algorithm"), "{e}");
        w1.shutdown();
        w2.shutdown();
    }

    #[test]
    fn cluster_flag_errors_are_reported() {
        let trace = cmd_gen(&argv(&["--m", "4", "--cap", "1"])).unwrap();
        let e = cmd_run(
            &argv(&["--cluster", "2", "--workers", "127.0.0.1:1"]),
            &trace,
        )
        .unwrap_err();
        assert!(e.to_string().contains("mutually exclusive"), "{e}");
        let e = cmd_run(&argv(&["--cluster", "0"]), &trace).unwrap_err();
        assert!(e.to_string().contains("--cluster"), "{e}");
        assert!(cmd_run(&argv(&["--cluster", "lots"]), &trace).is_err());
        let e = cmd_run(&argv(&["--workers"]), &trace).unwrap_err();
        assert!(e.to_string().contains("--workers"), "{e}");
        let e = cmd_run(&argv(&["--workers", ","]), &trace).unwrap_err();
        assert!(e.to_string().contains("--workers"), "{e}");
        let e = cmd_run(&argv(&["--workers", "not an address"]), &trace).unwrap_err();
        assert!(e.to_string().contains("cannot resolve"), "{e}");
        // `--stream -` cannot be replayed through a cluster (the
        // bound and retries both need to re-read the trace).
        let e = dispatch(
            &argv(&["run", "--stream", "-", "--workers", "127.0.0.1:1"]),
            &trace,
        )
        .unwrap_err();
        assert!(e.to_string().contains("--stream FILE"), "{e}");
    }

    #[test]
    fn workers_flag_streams_trace_files_through_the_cluster() {
        // `acmr run --stream FILE --workers …` replays the file
        // through the pool and must match the in-process streamed run.
        let handle = crate::serve::serve(
            default_registry(),
            crate::serve::ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..Default::default()
            },
        )
        .unwrap();
        let workers = handle.local_addr().to_string();
        let golden = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/adv-squeeze.trace"
        );
        let expected = dispatch(
            &argv(&[
                "run", "--alg", "greedy", "--seed", "4", "--format", "json", "--stream", golden,
            ]),
            "",
        )
        .unwrap();
        let clustered = dispatch(
            &argv(&[
                "run",
                "--alg",
                "greedy",
                "--seed",
                "4",
                "--format",
                "json",
                "--stream",
                golden,
                "--workers",
                &workers,
            ]),
            "",
        )
        .unwrap();
        assert_eq!(clustered, expected);
        handle.shutdown();
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(cmd_stats(b"garbage").is_err());
        assert!(cmd_run(&argv(&["--alg", "nope"]), "x").is_err());
        let trace = cmd_gen(&argv(&["--m", "8", "--cap", "2"])).unwrap();
        let e = cmd_run(&argv(&["--alg", "nope"]), &trace).unwrap_err();
        assert!(e.to_string().contains("unknown algorithm"), "{e}");
        assert!(cmd_run(&argv(&["--alg", "greedy?bogus=1"]), &trace).is_err());
        assert!(cmd_run(&argv(&["--format", "yaml"]), &trace).is_err());
        assert!(cmd_gen(&argv(&["--m", "NaN"])).is_err());
        assert!(cmd_gen(&argv(&["--topology", "torus"])).is_err());
        assert!(parse_flags(&argv(&["oops"])).is_err());
    }

    #[test]
    fn dispatch_covers_commands() {
        assert!(dispatch(&argv(&["help"]), "").unwrap().contains("USAGE"));
        assert!(dispatch(&[], "").unwrap().contains("USAGE"));
        assert!(dispatch(&argv(&["wat"]), "").is_err());
        assert!(dispatch(&argv(&["algs"]), "").unwrap().contains("greedy"));
        let trace = dispatch(&argv(&["gen", "--m", "8", "--cap", "2"]), "").unwrap();
        assert!(dispatch(&argv(&["stats"]), &trace).is_ok());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = cmd_gen(&argv(&["--m", "16", "--seed", "4"])).unwrap();
        let b = cmd_gen(&argv(&["--m", "16", "--seed", "4"])).unwrap();
        assert_eq!(a, b);
    }
}
