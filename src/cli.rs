//! The `acmr` command-line tool: generate, inspect, bound and run
//! admission-control traces from the shell.
//!
//! ```text
//! acmr gen  --m 64 --cap 4 --overload 2 --seed 1 [--weighted] > t.trace
//! acmr stats < t.trace
//! acmr opt   < t.trace
//! acmr run --alg aag-weighted --seed 7 < t.trace
//! ```
//!
//! All subcommand logic lives here (unit-tested); `src/bin/acmr.rs` is
//! a thin stdin/stdout shim.

use crate::baselines::{CreditSqrtM, GreedyNonPreemptive, PreemptCheapest};
use crate::core::{AdmissionInstance, RandConfig, RandomizedAdmission};
use crate::harness::{admission_opt, run_admission, BoundBudget, OptBoundKind};
use crate::workloads::trace::{read_trace, write_trace};
use crate::workloads::{random_path_workload, CostModel, PathWorkloadSpec, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// CLI failure: message for stderr, non-zero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parse `--key value` pairs (flags without values get `"true"`).
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| err(format!("expected --flag, got {:?}", args[i])))?;
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            map.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            map.insert(key.to_string(), "true".to_string());
            i += 1;
        }
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("--{key}: cannot parse {v:?}"))),
    }
}

/// `acmr gen` — emit a trace to the returned string.
pub fn cmd_gen(args: &[String]) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let m: u32 = get(&flags, "m", 64)?;
    let cap: u32 = get(&flags, "cap", 4)?;
    let overload: f64 = get(&flags, "overload", 2.0)?;
    let seed: u64 = get(&flags, "seed", 0)?;
    let max_hops: u32 = get(&flags, "max-hops", 8)?;
    let weighted = flags.contains_key("weighted");
    let topology = match flags.get("topology").map(String::as_str) {
        None | Some("line") => Topology::Line { m },
        Some("grid") => {
            let side = ((m as f64).sqrt().ceil() as u32).max(2);
            Topology::Grid {
                rows: side,
                cols: side,
            }
        }
        Some("tree") => Topology::Tree {
            levels: (32 - m.leading_zeros()).max(2),
        },
        Some(other) => return Err(err(format!("unknown topology {other:?}"))),
    };
    let spec = PathWorkloadSpec {
        topology,
        capacity: cap,
        overload,
        costs: if weighted {
            CostModel::Zipf {
                n_values: 64,
                s: 1.1,
            }
        } else {
            CostModel::Unit
        },
        max_hops,
    };
    let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(seed));
    Ok(write_trace(&inst))
}

/// `acmr stats` — summarize a trace.
pub fn cmd_stats(trace: &str) -> Result<String, CliError> {
    let inst = read_trace(trace).map_err(|e| err(e.to_string()))?;
    let mut out = String::new();
    out.push_str(&format!(
        "edges           : {}\nmax capacity    : {}\nrequests        : {}\ntotal cost      : {:.2}\nunweighted      : {}\nmax edge excess : {}\n",
        inst.num_edges(),
        inst.max_capacity(),
        inst.requests.len(),
        inst.total_cost(),
        inst.is_unweighted(),
        inst.max_excess(),
    ));
    Ok(out)
}

/// `acmr opt` — best offline bound for a trace.
pub fn cmd_opt(trace: &str) -> Result<String, CliError> {
    let inst = read_trace(trace).map_err(|e| err(e.to_string()))?;
    let bound = admission_opt(&inst, BoundBudget::default());
    let kind = match bound.kind {
        OptBoundKind::Exact => "exact",
        OptBoundKind::LpLowerBound => "lp-lower-bound",
        OptBoundKind::GreedyOverH => "greedy-over-H",
        OptBoundKind::Trivial => "trivial(Q)",
    };
    Ok(format!("opt {kind} {:.4}\n", bound.value))
}

/// `acmr run` — run an algorithm over a trace; returns the report.
pub fn cmd_run(args: &[String], trace: &str) -> Result<String, CliError> {
    let flags = parse_flags(args)?;
    let inst = read_trace(trace).map_err(|e| err(e.to_string()))?;
    let seed: u64 = get(&flags, "seed", 0)?;
    let alg_name = flags
        .get("alg")
        .map(String::as_str)
        .unwrap_or("aag-weighted");
    let run = run_named(alg_name, &inst, seed)?;
    let opt = admission_opt(&inst, BoundBudget::default());
    Ok(format!(
        "algorithm      : {alg_name}\nrejected cost  : {:.2}\nrejected count : {}\npreemptions    : {}\nopt bound      : {:.2}\nratio          : {:.3}\n",
        run.rejected_cost,
        run.rejected_count,
        run.preemptions,
        opt.value,
        opt.ratio(run.rejected_cost),
    ))
}

fn run_named(
    name: &str,
    inst: &AdmissionInstance,
    seed: u64,
) -> Result<crate::harness::AdmissionRun, CliError> {
    let caps = &inst.capacities;
    Ok(match name {
        "aag-weighted" => {
            let mut alg =
                RandomizedAdmission::new(caps, RandConfig::weighted(), StdRng::seed_from_u64(seed));
            run_admission(&mut alg, inst)
        }
        "aag-unweighted" => {
            let mut alg = RandomizedAdmission::new(
                caps,
                RandConfig::unweighted(),
                StdRng::seed_from_u64(seed),
            );
            run_admission(&mut alg, inst)
        }
        "greedy" => run_admission(&mut GreedyNonPreemptive::new(caps), inst),
        "preempt-cheapest" => run_admission(&mut PreemptCheapest::new(caps), inst),
        "credit-sqrt-m" => run_admission(&mut CreditSqrtM::new(caps), inst),
        other => {
            return Err(err(format!(
                "unknown --alg {other:?} (try aag-weighted, aag-unweighted, greedy, preempt-cheapest, credit-sqrt-m)"
            )))
        }
    })
}

/// Top-level dispatch; `stdin` supplies the trace for the commands
/// that read one. Returns the stdout payload.
pub fn dispatch(argv: &[String], stdin: &str) -> Result<String, CliError> {
    match argv.first().map(String::as_str) {
        Some("gen") => cmd_gen(&argv[1..]),
        Some("stats") => cmd_stats(stdin),
        Some("opt") => cmd_opt(stdin),
        Some("run") => cmd_run(&argv[1..], stdin),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(err(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

/// CLI usage text.
pub const USAGE: &str = "acmr — admission control to minimize rejections (Alon–Azar–Gutner, SPAA 2005)

USAGE:
  acmr gen  [--topology line|grid|tree] [--m N] [--cap C] [--overload F]
            [--seed S] [--weighted] [--max-hops H]     # trace to stdout
  acmr stats                                           # trace from stdin
  acmr opt                                             # trace from stdin
  acmr run  [--alg NAME] [--seed S]                    # trace from stdin
            NAME: aag-weighted | aag-unweighted | greedy
                | preempt-cheapest | credit-sqrt-m
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn gen_stats_opt_run_pipeline() {
        let trace = cmd_gen(&argv(&["--m", "16", "--cap", "2", "--seed", "5"])).unwrap();
        assert!(trace.starts_with("ACMR-TRACE v1"));
        let stats = cmd_stats(&trace).unwrap();
        assert!(stats.contains("edges           : 16"));
        let opt = cmd_opt(&trace).unwrap();
        assert!(opt.starts_with("opt "));
        let run = cmd_run(&argv(&["--alg", "aag-unweighted", "--seed", "1"]), &trace).unwrap();
        assert!(run.contains("ratio"));
    }

    #[test]
    fn weighted_gen_has_varied_costs() {
        let trace = cmd_gen(&argv(&["--m", "16", "--weighted", "--seed", "3"])).unwrap();
        let stats = cmd_stats(&trace).unwrap();
        assert!(stats.contains("unweighted      : false"));
    }

    #[test]
    fn all_algorithms_run() {
        let trace = cmd_gen(&argv(&["--m", "12", "--cap", "2", "--seed", "9"])).unwrap();
        for alg in [
            "aag-weighted",
            "aag-unweighted",
            "greedy",
            "preempt-cheapest",
            "credit-sqrt-m",
        ] {
            let out = cmd_run(&argv(&["--alg", alg]), &trace).unwrap();
            assert!(out.contains(alg), "missing name in {out}");
        }
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(cmd_stats("garbage").is_err());
        assert!(cmd_run(&argv(&["--alg", "nope"]), "x").is_err());
        assert!(cmd_gen(&argv(&["--m", "NaN"])).is_err());
        assert!(cmd_gen(&argv(&["--topology", "torus"])).is_err());
        assert!(parse_flags(&argv(&["oops"])).is_err());
    }

    #[test]
    fn dispatch_covers_commands() {
        assert!(dispatch(&argv(&["help"]), "").unwrap().contains("USAGE"));
        assert!(dispatch(&[], "").unwrap().contains("USAGE"));
        assert!(dispatch(&argv(&["wat"]), "").is_err());
        let trace = dispatch(&argv(&["gen", "--m", "8", "--cap", "2"]), "").unwrap();
        assert!(dispatch(&argv(&["stats"]), &trace).is_ok());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = cmd_gen(&argv(&["--m", "16", "--seed", "4"])).unwrap();
        let b = cmd_gen(&argv(&["--m", "16", "--seed", "4"])).unwrap();
        assert_eq!(a, b);
    }
}
