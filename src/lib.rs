//! # acmr — Admission Control to Minimize Rejections & Online Set Cover with Repetitions
//!
//! A from-scratch Rust reproduction of **Alon, Azar & Gutner,
//! SPAA 2005**: the `O(log²(mc))`-competitive randomized preemptive
//! admission-control algorithm (and its `O(log m log c)` unweighted
//! variant), the reduction from online set cover with repetitions to
//! admission control, and the deterministic `O(log m log n)` bicriteria
//! set-cover algorithm — plus every substrate needed to evaluate them.
//!
//! This facade crate re-exports the workspace so applications can use a
//! single dependency:
//!
//! * [`graph`] — capacitated graphs, paths, generators, load auditing
//! * [`lp`] — simplex LP, branch-and-bound ILP, greedy covering
//! * [`core`] — the paper's algorithms (start here)
//! * [`baselines`] — BKK-style and greedy baselines
//! * [`workloads`] — instance generators and traces
//! * [`harness`] — audited runners, OPT bounds, experiments E1–E9, E11
//!
//! ## Quickstart
//!
//! ```
//! use acmr::core::{RandConfig, RandomizedAdmission, Request, RequestId, OnlineAdmission};
//! use acmr::graph::{EdgeId, EdgeSet};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Two-edge network, capacity 1 each.
//! let mut alg = RandomizedAdmission::new(
//!     &[1, 1],
//!     RandConfig::weighted(),
//!     StdRng::seed_from_u64(42),
//! );
//! let r0 = Request::new(EdgeSet::new(vec![EdgeId(0), EdgeId(1)]), 5.0);
//! let out = alg.on_request(RequestId(0), &r0);
//! assert!(out.accepted); // plenty of room: the paper's base case
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use acmr_baselines as baselines;
pub use acmr_core as core;
pub use acmr_graph as graph;
pub use acmr_harness as harness;
pub use acmr_lp as lp;
pub use acmr_workloads as workloads;
