//! # acmr — Admission Control to Minimize Rejections & Online Set Cover with Repetitions
//!
//! A from-scratch Rust reproduction of **Alon, Azar & Gutner,
//! SPAA 2005**: the `O(log²(mc))`-competitive randomized preemptive
//! admission-control algorithm (and its `O(log m log c)` unweighted
//! variant), the reduction from online set cover with repetitions to
//! admission control, and the deterministic `O(log m log n)` bicriteria
//! set-cover algorithm — plus every substrate needed to evaluate them.
//!
//! This facade crate re-exports the workspace so applications can use a
//! single dependency:
//!
//! * [`graph`] — capacitated graphs, paths, generators, load auditing
//! * [`lp`] — simplex LP, branch-and-bound ILP, greedy covering
//! * [`core`] — the paper's algorithms, the algorithm registry, and the
//!   streaming `Session` driver (start here)
//! * [`baselines`] — BKK-style and greedy baselines
//! * [`workloads`] — instance generators and the trace format,
//!   including the chunked `TraceReader`/`TraceWriter` streaming pair
//!   (`docs/TRACE_FORMAT.md` has the grammar)
//! * [`harness`] — the assembled registry, report-producing runners
//!   (in-memory, and streamed with the two-pass OPT bound), sharded
//!   sweeps, the cross-process `ClusterDriver`, experiments E1–E9, E11
//! * [`serve`] — the live serving front end: the `ACMR-SERVE v1` TCP
//!   protocol (`docs/SERVING.md`), thread-per-connection session
//!   server, matching client (`acmr serve` / `acmr client`), and the
//!   `WorkerPool` behind cluster runs (`acmr run --cluster/--workers`)
//!
//! `docs/ARCHITECTURE.md` maps the crates and the layered engine API
//! (registry → session → batch → stream → reports → shard → cluster →
//! CLI).
//!
//! ## Quickstart
//!
//! Algorithms are addressed by spec string through the registry and
//! driven one arrival at a time through a [`core::Session`], which
//! audits feasibility and accumulates statistics as it goes:
//!
//! ```
//! use acmr::core::{AlgorithmSpec, Request, Session};
//! use acmr::graph::{EdgeId, EdgeSet};
//! use acmr::harness::default_registry;
//!
//! // Two-edge network, capacity 1 each; the paper's weighted algorithm.
//! let registry = default_registry();
//! let spec = AlgorithmSpec::parse("aag-weighted?seed=42").unwrap();
//! let mut session = Session::from_registry(&registry, &spec, &[1, 1], 0).unwrap();
//!
//! let r0 = Request::new(EdgeSet::new(vec![EdgeId(0), EdgeId(1)]), 5.0);
//! let event = session.push(&r0).unwrap();
//! assert!(event.accepted); // plenty of room: the paper's base case
//!
//! let report = session.report(); // serde-backed, CLI-identical schema
//! assert_eq!(report.seed, Some(42));
//! assert_eq!(report.rejected_count, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use acmr_baselines as baselines;
pub use acmr_core as core;
pub use acmr_graph as graph;
pub use acmr_harness as harness;
pub use acmr_lp as lp;
pub use acmr_serve as serve;
pub use acmr_workloads as workloads;
