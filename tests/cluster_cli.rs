//! Cluster end-to-end over the **real binaries**: `WorkerPool::
//! spawn_local` launching genuine `acmr serve` child processes
//! (discovered via their machine-parseable `LISTENING <addr>` stderr
//! line), a `ClusterDriver` sweep fanned across them, a real
//! mid-sweep `kill` of a worker process, and the `acmr run --cluster`
//! CLI path — the multi-process pipeline an operator actually runs.

use acmr::core::AcmrError;
use acmr::harness::{cross_jobs, default_registry, BoundBudget, ClusterDriver, ShardedDriver};
use acmr::serve::{WorkerPool, CLUSTER_ERROR_CODE};
use acmr::workloads::trace::read_trace;
use std::io::{Read, Write};
use std::process::{Command, Stdio};

fn golden_instance() -> acmr::core::AdmissionInstance {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/adv-squeeze.trace"
    ))
    .expect("read golden trace");
    read_trace(&text).expect("parse golden trace")
}

#[test]
fn spawned_worker_processes_survive_a_kill_mid_sweep_and_match_sharded() {
    let acmr = env!("CARGO_BIN_EXE_acmr");
    let registry = default_registry();
    let inst = golden_instance();
    let traces = vec![("squeeze".to_string(), inst)];
    let specs: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let jobs = cross_jobs(&["squeeze"], &spec_refs, &[0, 1, 2]);

    let expected = ShardedDriver::new()
        .threads(2)
        .batch(8)
        .budget(BoundBudget::default())
        .run(&registry, &traces, &jobs)
        .expect("sharded reference");

    // Two genuine `acmr serve` child processes, each announcing its
    // ephemeral port via the pinned `LISTENING <addr>` stderr line.
    let pool = WorkerPool::spawn_local(acmr, 2).expect("spawn worker processes");
    assert_eq!(pool.len(), 2);
    assert_eq!(pool.alive(), 2);

    // Kill worker 0's process mid-sweep (a real SIGKILL, not a
    // graceful shutdown): jobs in flight on it are severed mid-frame,
    // later jobs find its port dead — every one must be retried as a
    // whole-trace replay on the surviving process, and the report
    // must come out identical to the undisturbed sharded one.
    let sweep = std::thread::scope(|scope| {
        let killer = scope.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(pool.kill_worker(0), "worker 0 should be killable");
        });
        let sweep = ClusterDriver::new(&pool)
            .batch(8)
            .budget(BoundBudget::default())
            .run(&traces, &jobs)
            .expect("sweep must survive a killed worker process");
        killer.join().expect("killer thread");
        sweep
    });
    assert_eq!(sweep, expected, "killed-worker sweep diverges");
    assert_eq!(
        serde_json::to_string_pretty(&sweep).unwrap(),
        serde_json::to_string_pretty(&expected).unwrap(),
        "serialized reports differ"
    );

    // Kill the survivor too: the next sweep must fail with one typed
    // cluster error — no panic, no hang, no partial report.
    assert!(pool.kill_worker(1));
    let err = ClusterDriver::new(&pool)
        .batch(8)
        .run(&traces, &jobs)
        .expect_err("no workers left");
    match &err {
        AcmrError::Remote { code, .. } => assert_eq!(code, CLUSTER_ERROR_CODE),
        other => panic!("expected a typed cluster error, got {other:?}"),
    }
    pool.shutdown();
}

#[test]
fn acmr_run_cluster_flag_is_byte_identical_to_plain_run() {
    // `acmr run --cluster 2` spawns two worker processes from the
    // binary itself and must print the byte-identical report —
    // offline-optimum context included — that plain `acmr run`
    // prints for the same trace, algorithm, and seed.
    let acmr = env!("CARGO_BIN_EXE_acmr");
    let trace = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/adv-squeeze.trace"
    ))
    .expect("read golden trace");

    let run = |extra: &[&str]| -> String {
        let mut args = vec!["run", "--alg", "greedy", "--seed", "4", "--format", "json"];
        args.extend_from_slice(extra);
        let mut child = Command::new(acmr)
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn acmr run");
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(trace.as_bytes())
            .unwrap();
        drop(child.stdin.take());
        let mut out = String::new();
        child
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut out)
            .unwrap();
        let mut errs = String::new();
        child
            .stderr
            .take()
            .unwrap()
            .read_to_string(&mut errs)
            .unwrap();
        assert!(child.wait().unwrap().success(), "{args:?} failed: {errs}");
        out
    };

    let plain = run(&[]);
    let clustered = run(&["--cluster", "2"]);
    assert_eq!(
        clustered, plain,
        "--cluster 2 must not change the report by a byte"
    );
    // The spawned workers are children of the `acmr run` process and
    // die with it; nothing to clean up here.
}
