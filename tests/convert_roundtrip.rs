//! `acmr convert` round-trip suite over the committed golden corpus:
//! every corpus trace converts text → binary → text byte-identically
//! (and binary → text → binary likewise), `acmr stats` reports the
//! right format version for both files with otherwise identical
//! output, and `acmr run --stream` replays the converted binary trace
//! to the byte-identical report of the text original. CI runs this as
//! its conversion gate.

use acmr::cli::{cmd_convert, cmd_stats, dispatch};

fn golden_trace_paths() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden"));
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("golden corpus directory")
        .map(|e| e.expect("corpus entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("trace"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 8, "golden corpus shrank: {}", paths.len());
    paths
}

fn argv(s: &[&str]) -> Vec<String> {
    s.iter().map(|x| x.to_string()).collect()
}

#[test]
fn golden_corpus_converts_losslessly_in_both_directions() {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    for path in golden_trace_paths() {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read(&path).unwrap();
        let bin_path = tmp.join(format!("acmr-roundtrip-{pid}-{name}.bin"));
        let back_path = tmp.join(format!("acmr-roundtrip-{pid}-{name}.trace"));
        let bin2_path = tmp.join(format!("acmr-roundtrip-{pid}-{name}-2.bin"));

        // text → binary (default --to flips the format).
        let summary =
            cmd_convert(&argv(&[path.to_str().unwrap(), bin_path.to_str().unwrap()])).unwrap();
        assert!(summary.contains("ACMR-TRACE v2 (binary)"), "{summary}");

        // binary → text reproduces the committed file byte for byte.
        cmd_convert(&argv(&[
            bin_path.to_str().unwrap(),
            back_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&back_path).unwrap(),
            text,
            "{name}: binary → text must reproduce the original"
        );

        // …and text → binary again reproduces the binary byte for
        // byte (the binary encoding is canonical).
        cmd_convert(&argv(&[
            back_path.to_str().unwrap(),
            bin2_path.to_str().unwrap(),
            "--to",
            "binary",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&bin2_path).unwrap(),
            std::fs::read(&bin_path).unwrap(),
            "{name}: text → binary must be canonical"
        );

        // stats: same numbers, different (correct) format line.
        let st = cmd_stats(&text).unwrap();
        let sb = cmd_stats(&std::fs::read(&bin_path).unwrap()).unwrap();
        assert!(
            st.contains("format          : ACMR-TRACE v1 (text)"),
            "{st}"
        );
        assert!(
            sb.contains("format          : ACMR-TRACE v2 (binary)"),
            "{sb}"
        );
        assert_eq!(
            st.lines().skip(1).collect::<Vec<_>>(),
            sb.lines().skip(1).collect::<Vec<_>>(),
            "{name}: stats must agree beyond the format line"
        );

        // Replay: the binary trace streams (zero-copy off the map) to
        // the byte-identical report of the text original.
        let stream = |p: &std::path::Path| {
            dispatch(
                &argv(&[
                    "run",
                    "--alg",
                    "aag-weighted",
                    "--seed",
                    "3",
                    "--format",
                    "json",
                    "--stream",
                    p.to_str().unwrap(),
                ]),
                "",
            )
            .unwrap()
        };
        assert_eq!(stream(&bin_path), stream(&path), "{name}: streamed report");

        for p in [bin_path, back_path, bin2_path] {
            std::fs::remove_file(p).unwrap();
        }
    }
}

#[test]
fn in_place_conversion_is_refused_and_the_input_survives() {
    // `acmr convert t.bin t.bin` used to truncate the input via
    // File::create before a single record was read — destroying the
    // trace and "converting" an empty file. Now it must refuse with a
    // typed flag error, leave the input untouched, and catch spelling
    // variants of the same path (./x, symlinks) too.
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let src = golden_trace_paths().remove(0);
    let input = tmp.join(format!("acmr-inplace-{pid}.trace"));
    std::fs::copy(&src, &input).unwrap();
    let original = std::fs::read(&input).unwrap();
    let input_str = input.to_str().unwrap().to_string();

    // Same literal path.
    let e = cmd_convert(&argv(&[&input_str, &input_str])).unwrap_err();
    assert!(e.to_string().contains("over its input"), "{e}");
    assert_eq!(std::fs::read(&input).unwrap(), original, "input truncated");

    // Same file, different spelling: a `.`-segment alias.
    let dotted = tmp
        .join(".")
        .join(format!("acmr-inplace-{pid}.trace"))
        .to_str()
        .unwrap()
        .to_string();
    let e = cmd_convert(&argv(&[&input_str, &dotted, "--to", "text"])).unwrap_err();
    assert!(e.to_string().contains("over its input"), "{e}");
    assert_eq!(std::fs::read(&input).unwrap(), original, "input truncated");

    // A genuinely different output path still works.
    let out = tmp.join(format!("acmr-inplace-{pid}.bin"));
    cmd_convert(&argv(&[&input_str, out.to_str().unwrap()])).unwrap();
    assert_eq!(std::fs::read(&input).unwrap(), original);
    std::fs::remove_file(&input).unwrap();
    std::fs::remove_file(&out).unwrap();
}
