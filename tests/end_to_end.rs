//! Cross-crate integration tests: full pipelines from workload
//! generation through algorithms to audited competitive ratios.

use acmr::baselines::{GreedyNonPreemptive, PreemptCheapest};
use acmr::core::setcover::{BicriteriaCover, ReductionCover};
use acmr::core::{RandConfig, RandomizedAdmission};
use acmr::harness::{
    admission_opt, run_admission, run_set_cover, setcover_opt, BoundBudget, OptBoundKind,
};
use acmr::workloads::adversarial::{nested_intervals, repeated_hot_edge, two_phase_squeeze};
use acmr::workloads::{
    random_arrivals, random_path_workload, random_set_system, structured_partition_system,
    ArrivalPattern, CostModel, PathWorkloadSpec, SetSystemSpec, Topology,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn randomized_admission_on_all_topologies() {
    for (i, topo) in [
        Topology::Line { m: 24 },
        Topology::Tree { levels: 4 },
        Topology::Grid { rows: 4, cols: 4 },
        Topology::Gnp { n: 20, p: 0.15 },
    ]
    .into_iter()
    .enumerate()
    {
        let spec = PathWorkloadSpec {
            topology: topo,
            capacity: 3,
            overload: 2.0,
            costs: CostModel::Uniform { lo: 1.0, hi: 6.0 },
            max_hops: 6,
        };
        let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(i as u64));
        let mut alg = RandomizedAdmission::new(
            &inst.capacities,
            RandConfig::weighted(),
            StdRng::seed_from_u64(100 + i as u64),
        );
        // run_admission audits feasibility + contract; panics on bugs.
        let run = run_admission(&mut alg, &inst);
        let opt = admission_opt(&inst, BoundBudget::default());
        let ratio = opt.ratio(run.rejected_cost);
        assert!(ratio.is_finite(), "topology {i}: infinite ratio");
        let m = inst.num_edges() as f64;
        let c = inst.max_capacity() as f64;
        assert!(
            ratio <= 30.0 * (m * c).ln().powi(2).max(1.0),
            "topology {i}: ratio {ratio} out of envelope"
        );
    }
}

#[test]
fn hot_edge_exact_opt_cross_check() {
    // OPT on the hot-edge family is known in closed form; the covering
    // solver must agree with it exactly, and the online algorithm must
    // land within the unweighted theorem envelope.
    for &(cap, total) in &[(2u32, 8u32), (4, 16), (8, 24)] {
        let inst = repeated_hot_edge(4, cap, total);
        let opt = admission_opt(&inst, BoundBudget::default());
        assert_eq!(opt.kind, OptBoundKind::Exact);
        assert!((opt.value - (total - cap) as f64).abs() < 1e-9);
        let mut alg = RandomizedAdmission::new(
            &inst.capacities,
            RandConfig::unweighted(),
            StdRng::seed_from_u64(5),
        );
        let run = run_admission(&mut alg, &inst);
        assert!(run.rejected_cost >= opt.value - 1e-9);
    }
}

#[test]
fn preemption_actually_happens_on_squeeze() {
    // The two-phase squeeze admits everything in phase 1 and then must
    // preempt in phase 2 — exercising the machinery §4 relies on.
    let inst = two_phase_squeeze(12, 4, 3, 4);
    let mut alg = RandomizedAdmission::new(
        &inst.capacities,
        RandConfig::weighted(),
        StdRng::seed_from_u64(9),
    );
    let run = run_admission(&mut alg, &inst);
    assert!(run.preemptions > 0, "squeeze must force preemptions");
    // The expensive phase-2 requests should survive.
    let phase2_accepted = run.accepted.iter().rev().take(4).filter(|&&a| a).count();
    assert!(
        phase2_accepted >= 3,
        "only {phase2_accepted}/4 phase-2 hits survived"
    );
}

#[test]
fn nested_adversarial_ranking() {
    // On nested intervals the paper's algorithm and preempt-cheapest
    // must beat plain FCFS (which keeps the wide hogs).
    let inst = nested_intervals(32, 2, 2, 3);
    let opt = admission_opt(&inst, BoundBudget::default());
    let paper = {
        let mut alg = RandomizedAdmission::new(
            &inst.capacities,
            RandConfig::weighted(),
            StdRng::seed_from_u64(3),
        );
        run_admission(&mut alg, &inst).rejected_cost
    };
    let fcfs = {
        let mut alg = GreedyNonPreemptive::new(&inst.capacities);
        run_admission(&mut alg, &inst).rejected_cost
    };
    let preempt = {
        let mut alg = PreemptCheapest::new(&inst.capacities);
        run_admission(&mut alg, &inst).rejected_cost
    };
    assert!(opt.value > 0.0);
    assert!(
        paper <= fcfs,
        "paper ({paper}) must not lose to FCFS ({fcfs}) on its home turf"
    );
    assert!(preempt.is_finite());
}

#[test]
fn reduction_and_bicriteria_agree_on_partition_gap() {
    // Structured gap system: global set makes OPT = 1 per round.
    let system = structured_partition_system(24, 4, 2);
    let arrivals = random_arrivals(
        &system,
        ArrivalPattern::RoundRobin,
        1,
        &mut StdRng::seed_from_u64(4),
    );
    let opt = setcover_opt(&system, &arrivals, BoundBudget::default());
    assert!((opt.value - 1.0).abs() < 1e-9, "gap instance OPT must be 1");

    let mut red = ReductionCover::randomized(
        system.clone(),
        RandConfig::unweighted(),
        StdRng::seed_from_u64(8),
    );
    let red_run = run_set_cover(&mut red, &system, &arrivals);
    assert_eq!(red.repairs(), 0);
    // O(log m log n) with small constants: far below buying all 9 sets.
    assert!(red_run.cost <= system.num_sets() as f64);

    let mut bi = BicriteriaCover::new(system.clone(), 0.25);
    let bi_run = run_set_cover(&mut bi, &system, &arrivals);
    assert!(bi_run.worst_coverage_ratio >= 0.75 - 1e-9);
    assert_eq!(bi.fallback_picks(), 0);
}

#[test]
fn repetition_semantics_distinct_sets_end_to_end() {
    // An element arriving k times must end with ≥ k distinct covering
    // sets under the reduction, and ≥ (1−ε)k under bicriteria — checked
    // against an independently computed coverage count.
    let spec = SetSystemSpec {
        num_elements: 12,
        num_sets: 20,
        density: 0.35,
        min_degree: 4,
        max_cost: 1,
    };
    let system = random_set_system(&spec, &mut StdRng::seed_from_u64(21));
    let arrivals = random_arrivals(
        &system,
        ArrivalPattern::Bursty,
        3,
        &mut StdRng::seed_from_u64(22),
    );
    let mut red = ReductionCover::randomized(
        system.clone(),
        RandConfig::unweighted(),
        StdRng::seed_from_u64(23),
    );
    let _ = run_set_cover(&mut red, &system, &arrivals);
    let mut demand = vec![0u32; system.num_elements()];
    for &j in &arrivals {
        demand[j as usize] += 1;
    }
    for j in 0..system.num_elements() as u32 {
        let covering = red.coverage(j);
        assert!(
            covering as u32 >= demand[j as usize],
            "element {j}: {covering} distinct sets < demand {}",
            demand[j as usize]
        );
    }
}

#[test]
fn trace_roundtrip_preserves_run_results() {
    // Serialize an instance, read it back, and verify a deterministic
    // algorithm produces the identical decision stream.
    let spec = PathWorkloadSpec {
        topology: Topology::Line { m: 16 },
        capacity: 2,
        overload: 2.0,
        costs: CostModel::Uniform { lo: 1.0, hi: 4.0 },
        max_hops: 5,
    };
    let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(31));
    let text = acmr::workloads::trace::write_trace(&inst);
    let back = acmr::workloads::trace::read_trace(&text).unwrap();
    let run1 = {
        let mut alg = RandomizedAdmission::new(
            &inst.capacities,
            RandConfig::weighted(),
            StdRng::seed_from_u64(77),
        );
        run_admission(&mut alg, &inst)
    };
    let run2 = {
        let mut alg = RandomizedAdmission::new(
            &back.capacities,
            RandConfig::weighted(),
            StdRng::seed_from_u64(77),
        );
        run_admission(&mut alg, &back)
    };
    assert_eq!(run1.accepted, run2.accepted);
    assert_eq!(run1.rejected_cost, run2.rejected_cost);
}

#[test]
fn zero_rejection_regime_stays_zero() {
    // The paper's motivating property: when OPT rejects nothing, the
    // online algorithm must reject nothing either (not merely few).
    for seed in 0..5u64 {
        let spec = PathWorkloadSpec {
            topology: Topology::Line { m: 32 },
            capacity: 8,
            overload: 0.4, // deeply under-loaded
            costs: CostModel::Uniform { lo: 1.0, hi: 9.0 },
            max_hops: 4,
        };
        let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(seed));
        if inst.max_excess() > 0 {
            continue; // rare local overload: skip, not the regime under test
        }
        let mut alg = RandomizedAdmission::new(
            &inst.capacities,
            RandConfig::weighted(),
            StdRng::seed_from_u64(seed + 50),
        );
        let run = run_admission(&mut alg, &inst);
        assert_eq!(
            run.rejected_cost, 0.0,
            "seed {seed}: rejected despite zero OPT"
        );
    }
}

#[test]
fn streaming_session_agrees_with_batch_runner() {
    // The batch runner is now a wrapper over the streaming Session; an
    // incremental push loop over the same trace must agree event by
    // event with the batch result, and the final RunReport must
    // round-trip through JSON unchanged.
    use acmr::core::{AlgorithmSpec, Session};
    use acmr::harness::default_registry;

    let spec = PathWorkloadSpec {
        topology: Topology::Grid { rows: 4, cols: 4 },
        capacity: 3,
        overload: 2.0,
        costs: CostModel::Uniform { lo: 1.0, hi: 8.0 },
        max_hops: 6,
    };
    let (_, inst) = random_path_workload(&spec, &mut StdRng::seed_from_u64(91));
    let registry = default_registry();
    let alg = AlgorithmSpec::parse("aag-weighted?seed=13").unwrap();

    // Streaming: one push per arrival, cumulative cost must be monotone.
    let mut session = Session::from_registry(&registry, &alg, &inst.capacities, 0).unwrap();
    let mut last_total = 0.0;
    for req in &inst.requests {
        let event = session.push(req).unwrap();
        assert!(event.total_rejected_cost >= last_total - 1e-9);
        last_total = event.total_rejected_cost;
    }
    let streamed = session.report();

    // Batch: same spec, same seed, one call.
    let mut batch = Session::from_registry(&registry, &alg, &inst.capacities, 0).unwrap();
    let batch_report = batch.run_trace(&inst).unwrap();
    assert_eq!(streamed, batch_report);
    assert_eq!(streamed.seed, Some(13));

    // And the legacy panic-on-violation runner agrees on the numbers.
    let mut direct = RandomizedAdmission::new(
        &inst.capacities,
        RandConfig::weighted(),
        StdRng::seed_from_u64(13),
    );
    let run = run_admission(&mut direct, &inst);
    assert_eq!(run.rejected_cost, streamed.rejected_cost);
    assert_eq!(run.preemptions, streamed.preemptions);

    // JSON round-trip of the shared report schema.
    let json = serde_json::to_string(&streamed).unwrap();
    let back: acmr::core::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, streamed);
}

/// The stochastic simulator end to end: `acmr gen --topology
/// stochastic` emits a trace every registered algorithm replays, and
/// the CLI's flag validation refuses misplaced or unknown `--model` /
/// `--family` values with typed errors pointing at `acmr help`.
#[test]
fn stochastic_gen_pipeline_and_flag_validation() {
    use acmr::cli::{cmd_gen, cmd_run};

    let args: Vec<String> = [
        "--topology",
        "stochastic",
        "--model",
        "flash",
        "--m",
        "32",
        "--cap",
        "3",
        "--duration",
        "64",
        "--weighted",
        "--seed",
        "3",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let trace = cmd_gen(&args).unwrap();
    assert_eq!(trace, cmd_gen(&args).unwrap(), "gen must be deterministic");

    let registry = acmr::harness::default_registry();
    for name in registry.names() {
        let run_args = vec!["--alg".to_string(), format!("{name}?seed=2")];
        let out = cmd_run(&run_args, &trace)
            .unwrap_or_else(|e| panic!("{name} on stochastic trace: {e}"));
        assert!(out.contains(name), "{name}: report lacks algorithm name");
    }

    // Misplaced and unknown flags: typed errors, help pointer included.
    let gen_err = |rest: &[&str]| {
        cmd_gen(&rest.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .unwrap_err()
            .to_string()
    };
    let e = gen_err(&["--topology", "line", "--model", "iid"]);
    assert!(
        e.contains("--model only applies") && e.contains("acmr help"),
        "{e}"
    );
    let e = gen_err(&["--topology", "stochastic", "--model", "bursty"]);
    assert!(
        e.contains("unknown stochastic model") && e.contains("acmr help"),
        "{e}"
    );
    let e = gen_err(&["--topology", "stochastic", "--family", "nested"]);
    assert!(
        e.contains("--family only applies") && e.contains("acmr help"),
        "{e}"
    );
}

/// The buyback axis end to end: `acmr gen --topology buyback-hostile`
/// emits an escalation trace, every registered algorithm replays it,
/// and the `buyback` policy nets less than the non-preempting greedy
/// baseline on its home topology. Also pins the uniform f64 flag
/// validation: NaN, infinity, and out-of-range values for
/// `--overload`, `--amplitude`, `--boost`, and `--growth` are typed
/// errors naming the flag and pointing at `acmr help` — never a panic
/// or a silently accepted NaN.
#[test]
fn buyback_gen_pipeline_and_float_flag_validation() {
    use acmr::cli::{cmd_gen, cmd_run};

    let args: Vec<String> = [
        "--topology",
        "buyback-hostile",
        "--m",
        "6",
        "--cap",
        "2",
        "--waves",
        "4",
        "--growth",
        "8",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let trace = cmd_gen(&args).unwrap();
    assert_eq!(trace, cmd_gen(&args).unwrap(), "gen must be deterministic");

    let registry = acmr::harness::default_registry();
    let mut rejected = std::collections::HashMap::new();
    for name in registry.names() {
        let run_args = vec!["--alg".to_string(), format!("{name}?seed=2")];
        let out = cmd_run(&run_args, &trace)
            .unwrap_or_else(|e| panic!("{name} on buyback-hostile trace: {e}"));
        assert!(out.contains(name), "{name}: report lacks algorithm name");
        let cost: f64 = out
            .lines()
            .find_map(|l| l.strip_prefix("rejected cost  : "))
            .unwrap_or_else(|| panic!("{name}: no rejected cost line"))
            .trim()
            .parse()
            .unwrap();
        rejected.insert(name, cost);
    }
    assert!(
        rejected["buyback"] < rejected["greedy"],
        "buyback ({}) must beat greedy ({}) on its home topology",
        rejected["buyback"],
        rejected["greedy"]
    );

    // Uniform f64 flag validation: typed error, flag named, help
    // pointer included — for every malformed shape including NaN.
    let gen_err = |rest: &[&str]| {
        cmd_gen(&rest.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .unwrap_err()
            .to_string()
    };
    let stochastic: &[&str] = &["--topology", "stochastic"];
    let diurnal: &[&str] = &["--topology", "stochastic", "--model", "diurnal"];
    let flash: &[&str] = &["--topology", "stochastic", "--model", "flash"];
    let hostile: &[&str] = &["--topology", "buyback-hostile"];
    for (base, flag, bad) in [
        (stochastic, "--overload", "nan"),
        (stochastic, "--overload", "inf"),
        (stochastic, "--overload", "0"),
        (stochastic, "--overload", "-2"),
        (diurnal, "--amplitude", "nan"),
        (diurnal, "--amplitude", "1.5"),
        (flash, "--boost", "nan"),
        (flash, "--boost", "1"),
        (hostile, "--growth", "nan"),
        (hostile, "--growth", "1"),
    ] {
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend([flag, bad]);
        let e = gen_err(&argv);
        assert!(
            e.contains(flag) && e.contains("acmr help"),
            "{flag}={bad}: {e}"
        );
    }

    // Scenario flags outside their topology are refused, not ignored.
    let e = gen_err(&["--topology", "line", "--growth", "4"]);
    assert!(
        e.contains("--growth only applies") && e.contains("acmr help"),
        "{e}"
    );
}
