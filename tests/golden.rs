//! Golden-trace regression corpus.
//!
//! Eleven committed traces (`tests/golden/<name>.trace`) spanning the
//! random topologies, every hostile family (including the buyback
//! cost-escalation topology), and two pinned stochastic arrival
//! models (iid, diurnal), each with the expected
//! [`SweepReport`] of all registered algorithms pinned as
//! `tests/golden/<name>.expected.json`. The sweep runs through the
//! `ShardedDriver` batch path with fixed `threads`/`batch`/seed, so
//! the files are bit-reproducible and any behavioral drift in an
//! algorithm, the session layer, the sharded driver, or the OPT
//! bounds fails here with a readable diff.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p acmr --test golden
//! ```
//!
//! and commit the rewritten files. To add a trace, add a row to
//! [`corpus`] and regenerate.

use acmr::core::AdmissionInstance;
use acmr::harness::{cross_jobs, default_registry, BoundBudget, ShardedDriver, SweepReport};
use acmr::workloads::trace::{read_trace, write_trace};
use acmr::workloads::{
    buyback_hostile, dyadic_admission_instance, nested_intervals, random_path_workload,
    repeated_hot_edge, stochastic_workload, two_phase_squeeze, CostModel, PathWorkloadSpec,
    StochasticSpec, Topology, TrafficModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Fixed sweep shape: every registered algorithm, one base seed, and a
/// pinned thread/batch count so the serialized report is identical on
/// every machine.
const SWEEP_SEED: u64 = 7;
const SWEEP_THREADS: usize = 2;
const SWEEP_BATCH: usize = 16;

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden"))
}

fn path_workload(
    topology: Topology,
    costs: CostModel,
    overload: f64,
    seed: u64,
) -> AdmissionInstance {
    let spec = PathWorkloadSpec {
        topology,
        capacity: 2,
        overload,
        costs,
        max_hops: 5,
    };
    random_path_workload(&spec, &mut StdRng::seed_from_u64(seed)).1
}

/// The corpus: one representative per regime. Keep instances small
/// enough that the exact/LP OPT bounds stay fast — this is a tier-1
/// test.
fn stochastic_trace(model: TrafficModel, seed: u64) -> AdmissionInstance {
    let spec = StochasticSpec {
        topology: Topology::Line { m: 12 },
        capacity: 2,
        model,
        arrival_rate: 1.5,
        duration: 48,
        costs: CostModel::Zipf {
            n_values: 64,
            s: 1.1,
        },
        max_hops: 6,
        session_alpha: 2.5,
        session_max: 6,
        width_alpha: 1.3,
    };
    stochastic_workload(&spec, &mut StdRng::seed_from_u64(seed)).1
}

fn corpus() -> Vec<(&'static str, AdmissionInstance)> {
    vec![
        (
            "line-unit",
            path_workload(Topology::Line { m: 16 }, CostModel::Unit, 2.0, 1),
        ),
        (
            "line-zipf",
            path_workload(
                Topology::Line { m: 16 },
                CostModel::Zipf {
                    n_values: 64,
                    s: 1.1,
                },
                2.0,
                2,
            ),
        ),
        (
            "grid-uniform",
            path_workload(
                Topology::Grid { rows: 3, cols: 3 },
                CostModel::Uniform { lo: 1.0, hi: 6.0 },
                1.5,
                3,
            ),
        ),
        (
            "tree-unit",
            path_workload(Topology::Tree { levels: 4 }, CostModel::Unit, 2.0, 4),
        ),
        ("adv-nested", nested_intervals(16, 2, 2, 2)),
        ("adv-hot-edge", repeated_hot_edge(4, 3, 12)),
        ("adv-squeeze", two_phase_squeeze(12, 3, 4, 3)),
        ("lower-bound-dyadic", dyadic_admission_instance(3, 2, 2)),
        ("buyback-hostile", buyback_hostile(6, 2, 4, 8.0)),
        ("stoch-iid", stochastic_trace(TrafficModel::Iid, 5)),
        (
            "stoch-diurnal",
            stochastic_trace(
                TrafficModel::Diurnal {
                    period: 16,
                    amplitude: 0.8,
                },
                6,
            ),
        ),
    ]
}

/// Run the pinned sweep over one named trace.
fn sweep(name: &str, inst: &AdmissionInstance) -> SweepReport {
    let registry = default_registry();
    let specs: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let jobs = cross_jobs(&[name], &spec_refs, &[SWEEP_SEED]);
    ShardedDriver::new()
        .threads(SWEEP_THREADS)
        .batch(SWEEP_BATCH)
        .budget(BoundBudget::default())
        .run(&registry, &[(name.to_string(), inst.clone())], &jobs)
        .expect("golden sweep runs")
}

/// First differing lines of two texts, numbered, for drift messages.
fn first_diff(expected: &str, actual: &str, context: usize) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let mut shown = 0;
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e != a {
            out.push_str(&format!(
                "  line {:>4}: expected {:?}\n             actual {:?}\n",
                i + 1,
                e.unwrap_or("<missing>"),
                a.unwrap_or("<missing>")
            ));
            shown += 1;
            if shown >= context {
                out.push_str("  …\n");
                break;
            }
        }
    }
    out
}

#[test]
fn golden_corpus_has_no_drift() {
    let dir = golden_dir();
    let update = std::env::var("UPDATE_GOLDEN")
        .map(|v| v == "1")
        .unwrap_or(false);
    if update {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let mut failures: Vec<String> = Vec::new();

    for (name, generated) in corpus() {
        let trace_path = dir.join(format!("{name}.trace"));
        let expected_path = dir.join(format!("{name}.expected.json"));
        let trace_text = write_trace(&generated);

        if update {
            std::fs::write(&trace_path, &trace_text).expect("write trace");
            let report = sweep(name, &generated);
            let json = serde_json::to_string_pretty(&report).expect("serialize sweep") + "\n";
            std::fs::write(&expected_path, json).expect("write expected");
            continue;
        }

        // 1. The committed trace must match its generator — catches
        //    silent workload-generator drift.
        let committed_trace = match std::fs::read_to_string(&trace_path) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!(
                    "{name}: cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test -p acmr --test golden`",
                    trace_path.display()
                ));
                continue;
            }
        };
        if committed_trace != trace_text {
            failures.push(format!(
                "{name}: generator output drifted from committed trace:\n{}",
                first_diff(&committed_trace, &trace_text, 6)
            ));
            continue;
        }

        // 2. Replaying the committed trace must reproduce the expected
        //    sweep report byte-for-byte.
        let inst = read_trace(&committed_trace).expect("committed trace parses");
        let report = sweep(name, &inst);
        let actual = serde_json::to_string_pretty(&report).expect("serialize sweep") + "\n";
        let expected = match std::fs::read_to_string(&expected_path) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!(
                    "{name}: cannot read {} ({e}); run `UPDATE_GOLDEN=1 cargo test -p acmr --test golden`",
                    expected_path.display()
                ));
                continue;
            }
        };
        if expected != actual {
            // Also locate which job drifted for a precise message.
            let mut detail = String::new();
            if let Ok(expected_report) = serde_json::from_str::<SweepReport>(&expected) {
                for (e, a) in expected_report.jobs.iter().zip(&report.jobs) {
                    if e != a {
                        detail.push_str(&format!(
                            "  first drifting job: {} on {} (expected rejected_cost {}, got {})\n",
                            a.report.algorithm,
                            a.trace,
                            e.report.rejected_cost,
                            a.report.rejected_cost
                        ));
                        break;
                    }
                }
            }
            failures.push(format!(
                "{name}: sweep report drifted:\n{detail}{}",
                first_diff(&expected, &actual, 8)
            ));
        }
    }

    assert!(
        failures.is_empty(),
        "golden corpus drift in {} trace(s) — if the change is intentional, \
         regenerate with `UPDATE_GOLDEN=1 cargo test -p acmr --test golden` and commit:\n\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn golden_corpus_covers_every_regime_and_algorithm() {
    // Structural guarantees about the corpus itself: both weighted and
    // unweighted traces, at least one preemption-forcing trace, and the
    // pinned sweep exercises every registered algorithm.
    let corpus = corpus();
    assert_eq!(corpus.len(), 11);
    assert!(corpus.iter().any(|(_, i)| i.is_unweighted()));
    assert!(corpus.iter().any(|(_, i)| !i.is_unweighted()));
    assert!(corpus.iter().all(|(_, i)| !i.requests.is_empty()));
    assert!(
        corpus.iter().any(|(_, i)| i.max_excess() > 0),
        "corpus must include overloaded traces"
    );
    let (name, inst) = &corpus[0];
    let report = sweep(name, inst);
    let algs: Vec<&str> = report
        .jobs
        .iter()
        .map(|j| j.report.algorithm_name.as_str())
        .collect();
    for registered in default_registry().names() {
        assert!(
            report.jobs.iter().any(|j| j.report.algorithm == registered),
            "sweep missing algorithm {registered} (got {algs:?})"
        );
    }
}
