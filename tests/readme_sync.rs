//! README ↔ `acmr help` drift guard.
//!
//! The README's usage block is generated from [`acmr::cli::USAGE`]
//! verbatim, between `<!-- acmr-help:begin -->` / `<!-- acmr-help:end
//! -->` markers. This test fails tier-1 (and the named CI step) the
//! moment either side changes without the other, so the README can
//! never again document a stale CLI surface. To update: paste the new
//! `acmr help` output between the markers (inside the ```text fence)
//! and commit both files together.

#[test]
fn readme_usage_block_matches_acmr_help() {
    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/README.md");
    let readme = std::fs::read_to_string(readme_path).expect("read README.md");

    let begin = "<!-- acmr-help:begin";
    let end = "<!-- acmr-help:end";
    let start = readme
        .find(begin)
        .expect("README.md is missing the `<!-- acmr-help:begin -->` marker");
    let stop = readme[start..]
        .find(end)
        .map(|off| start + off)
        .expect("README.md is missing the `<!-- acmr-help:end -->` marker");
    let block = &readme[start..stop];

    // Inside the markers sits exactly one ```text fence holding the
    // verbatim `acmr help` output.
    let fence_open = block
        .find("```text\n")
        .expect("marker block must contain a ```text fence");
    let body_start = fence_open + "```text\n".len();
    let body_end = block[body_start..]
        .find("\n```")
        .map(|off| body_start + off + 1)
        .expect("unterminated ```text fence in the marker block");
    let block_usage = &block[body_start..body_end];

    assert_eq!(
        block_usage,
        acmr::cli::USAGE,
        "README.md's usage block has drifted from `acmr help`.\n\
         Regenerate it: replace the fenced block between the\n\
         acmr-help markers with the current `acmr help` output."
    );
}
