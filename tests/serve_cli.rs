//! End-to-end smoke test of the **real binaries**: `acmr serve` as a
//! child process on an ephemeral loopback port, `acmr client`
//! replaying a committed golden trace through the socket — the same
//! pipeline the CI smoke step and an operator's first session run.

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the server child even if an assertion fails first.
struct ChildGuard(Child);
impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn acmr_serve_and_client_binaries_round_trip_a_golden_trace() {
    let acmr = env!("CARGO_BIN_EXE_acmr");
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/adv-squeeze.trace"
    );

    // `--addr 127.0.0.1:0`: the kernel picks the port, the server
    // echoes it on stderr — parse it from the listening line.
    let mut server = ChildGuard(
        Command::new(acmr)
            .args(["serve", "--addr", "127.0.0.1:0"])
            .stderr(Stdio::piped())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn acmr serve"),
    );
    let stderr = server.0.stderr.take().expect("server stderr");
    let mut lines = BufReader::new(stderr);
    // The FIRST stderr line is the machine-parseable announcement —
    // `LISTENING <addr>` — that cluster tooling
    // (`WorkerPool::spawn_local`, `acmr run --cluster`) parses to
    // discover an ephemeral port. Pinned here: prose may follow it,
    // never precede it.
    let mut listening = String::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while listening.is_empty() {
        assert!(
            Instant::now() < deadline,
            "server never printed its address"
        );
        lines.read_line(&mut listening).expect("read server stderr");
    }
    assert!(
        listening.starts_with("LISTENING 127.0.0.1:"),
        "first stderr line must be the machine-parseable announcement, got {listening:?}"
    );
    let addr = listening
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap()
        .to_string();
    addr.parse::<std::net::SocketAddr>()
        .expect("LISTENING names a valid socket address");
    // The human-readable line follows.
    let mut human = String::new();
    lines.read_line(&mut human).expect("read server stderr");
    assert!(human.contains("acmr-serve listening on"), "{human:?}");

    // Replay the golden trace through the socket with the client
    // binary, twice: per-arrival frames and BATCH frames.
    let mut outputs = Vec::new();
    for batch in [&[][..], &["--batch", "7"][..]] {
        let mut args = vec![
            "client", "--stream", golden, "--addr", &addr, "--alg", "greedy", "--format", "json",
        ];
        args.extend_from_slice(batch);
        let out = Command::new(acmr)
            .args(&args)
            .output()
            .expect("run acmr client");
        assert!(
            out.status.success(),
            "client failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(String::from_utf8(out.stdout).unwrap());
    }
    assert_eq!(outputs[0], outputs[1], "framing must not change the report");

    // The served report equals `acmr run` on the same trace minus the
    // offline-optimum context a live session cannot compute.
    let mut run = Command::new(acmr)
        .args(["run", "--alg", "greedy", "--format", "json"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn acmr run");
    std::io::copy(
        &mut std::fs::File::open(golden).unwrap(),
        run.stdin.as_mut().unwrap(),
    )
    .unwrap();
    drop(run.stdin.take());
    let mut run_out = String::new();
    run.stdout
        .take()
        .unwrap()
        .read_to_string(&mut run_out)
        .unwrap();
    assert!(run.wait().unwrap().success());

    let mut expected: acmr::core::RunReport = serde_json::from_str(&run_out).unwrap();
    expected.opt = None;
    let served: acmr::core::RunReport = serde_json::from_str(&outputs[0]).unwrap();
    assert_eq!(served, expected, "served report diverges from acmr run");
}
