//! Workspace-local stand-in for `criterion`.
//!
//! The build has no network access, so benches link against this small
//! wall-clock harness instead of real criterion. It keeps the API shape
//! (`criterion_group!` / `criterion_main!` / `Criterion` /
//! `benchmark_group` / `bench_with_input` / `Bencher::iter`) so bench
//! files compile unchanged, measures median wall-clock time per
//! iteration, and prints one line per benchmark:
//!
//! ```text
//! bench group/name/param ... median 1.23 ms (37 iters, 8.13 Melem/s)
//! ```
//!
//! No statistical analysis, outlier rejection, or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Throughput annotation for a group, mirroring `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes its sample
    /// by a fixed time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark over an input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            median: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        self.report(&id.label, &bencher);
    }

    /// Run one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            median: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        self.report(&id.into(), &bencher);
    }

    fn report(&self, label: &str, bencher: &Bencher) {
        let median = bencher.median.as_secs_f64();
        let rate = match (self.throughput, median > 0.0) {
            (Some(Throughput::Elements(n)), true) => {
                format!(", {:.2} Melem/s", n as f64 / median / 1e6)
            }
            (Some(Throughput::Bytes(n)), true) => {
                format!(", {:.2} MiB/s", n as f64 / median / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{label} ... median {} ({} iters{rate})",
            self.name,
            fmt_duration(bencher.median),
            bencher.iters,
        );
    }

    /// Finish the group (prints nothing extra in the stand-in).
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Measures a closure, mirroring `criterion::Bencher`.
pub struct Bencher {
    median: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly within a fixed budget and record the
    /// median iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up.
        black_box(routine());
        let budget = Duration::from_millis(300);
        let started = Instant::now();
        let mut samples: Vec<Duration> = Vec::new();
        while started.elapsed() < budget && samples.len() < 1000 {
            let t0 = Instant::now();
            black_box(routine());
            samples.push(t0.elapsed());
        }
        samples.sort_unstable();
        self.iters = samples.len() as u64;
        self.median = samples[samples.len() / 2];
    }
}

/// Bundle benchmark functions into one group runner, mirroring
/// criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_bench(criterion: &mut Criterion) {
        let mut group = criterion.benchmark_group("demo");
        group.throughput(Throughput::Elements(100));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn harness_runs_and_measures() {
        let mut criterion = Criterion::default();
        demo_bench(&mut criterion);
    }

    criterion_group!(benches, demo_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
