//! Workspace-local stand-in for `memmap2`.
//!
//! The build has no network access, so the binary trace reader links
//! against this thin `mmap(2)` shim instead of the real crate. It keeps
//! the API shape of the subset the workspace uses — `unsafe
//! Mmap::map(&File)` returning a read-only mapping that derefs to
//! `&[u8]` — so swapping to the real `memmap2` is a Cargo.toml-only
//! change.
//!
//! On Unix the mapping is a real `mmap(PROT_READ, MAP_PRIVATE)` over
//! the whole file, unmapped on drop. On other platforms `map` returns
//! `ErrorKind::Unsupported`; callers are expected to fall back to
//! reading the file into memory (the binary trace reader does).

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only memory mapping of an entire file.
///
/// Derefs to `&[u8]`; the mapping is released when the value drops.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
    /// False for the zero-length special case (POSIX `mmap` rejects
    /// `len == 0`), where `ptr` is dangling and nothing is unmapped.
    mapped: bool,
}

// SAFETY: the mapping is read-only (PROT_READ, MAP_PRIVATE) and the
// pointer/length pair never changes after construction, so shared and
// cross-thread access is as safe as for any `&[u8]`.
#[allow(unsafe_code)]
unsafe impl Send for Mmap {}
#[allow(unsafe_code)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    // std already links libc on every Unix target, so declaring the
    // two symbols directly avoids vendoring a libc crate.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// # Safety
    ///
    /// The caller must ensure the underlying file is not truncated or
    /// mutated while the mapping is alive — the OS gives no such
    /// guarantee, and access to removed pages is undefined behavior
    /// (this mirrors the real `memmap2` contract).
    #[cfg(unix)]
    #[allow(unsafe_code)]
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;

        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map into the address space",
            ));
        }
        let len = len as usize;
        if len == 0 {
            // POSIX mmap rejects zero-length mappings; represent the
            // empty file as an empty slice instead.
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
                mapped: false,
            });
        }
        let ptr = sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        );
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
            mapped: true,
        })
    }

    /// Non-Unix stub: always `ErrorKind::Unsupported`, so callers take
    /// their read-to-heap fallback path.
    #[cfg(not(unix))]
    #[allow(unsafe_code)]
    pub unsafe fn map(_file: &File) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap is unavailable on this platform",
        ))
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    #[allow(unsafe_code)]
    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` points at `len` mapped read-only bytes (or is a
        // dangling pointer with `len == 0`, which `from_raw_parts`
        // permits for an empty slice).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for Mmap {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.mapped {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once.
            unsafe {
                sys::munmap(self.ptr as *mut _, self.len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len)
            .field("mapped", &self.mapped)
            .finish()
    }
}

#[cfg(test)]
#[allow(unsafe_code)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join(format!("memmap2-shim-test-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(b"hello mapping").unwrap();
        f.sync_all().unwrap();
        let map = unsafe { Mmap::map(&File::open(&path).unwrap()) }.unwrap();
        assert_eq!(&map[..], b"hello mapping");
        assert_eq!(map.len(), 13);
        assert!(!map.is_empty());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_length_file_is_an_empty_slice() {
        let path = std::env::temp_dir().join(format!("memmap2-shim-empty-{}", std::process::id()));
        File::create(&path).unwrap();
        let map = unsafe { Mmap::map(&File::open(&path).unwrap()) }.unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
        std::fs::remove_file(&path).unwrap();
    }
}
