//! Workspace-local stand-in for `polling`.
//!
//! The build has no network access, so the reactor in `acmr-serve`
//! links against this thin readiness shim instead of the real crate.
//! It keeps the API shape of the subset the workspace uses — a
//! [`Poller`] that registers sources with level-triggered interest
//! [`Event`]s, blocks in [`Poller::wait`], and can be woken from any
//! thread with [`Poller::notify`] — so swapping to the real `polling`
//! is a Cargo.toml-plus-call-site-only change. (One deliberate
//! deviation: [`Poller::delete`] also takes the registration key, so
//! the fd-less fallback backend can unregister.)
//!
//! Three backends, chosen at compile time:
//!
//! * **Linux**: `epoll(7)` in level-triggered mode, with a
//!   nonblocking self-pipe for `notify` — the production backend the
//!   connection-scale bench exercises.
//! * **Other Unix**: `poll(2)` over the registered set each `wait`,
//!   same self-pipe wake-up. O(n) per call, fine for the fleet sizes
//!   a dev box serves.
//! * **Elsewhere**: a timed sweep — `wait` sleeps briefly (bounded by
//!   the caller's timeout, at most 5 ms) and reports every registered
//!   source ready for its full interest set. Spurious readiness is
//!   safe by construction because the reactor's reads and writes are
//!   nonblocking and tolerate `WouldBlock`; the cost is latency, not
//!   correctness.
//!
//! Like the `memmap2` shim, the unsafe surface is a handful of
//! direct `extern "C"` declarations (std already links libc on every
//! Unix target), each call wrapped immediately in an errno check.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// Raw OS handle of a pollable source.
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;
/// Raw OS handle of a pollable source (unused by the sweep backend).
#[cfg(not(unix))]
pub type RawFd = i32;

/// Anything the poller can watch. On Unix this is blanket-implemented
/// for every `AsRawFd` type (sockets, listeners, pipes); on the sweep
/// backend the handle is never consulted, so everything qualifies.
pub trait AsSource {
    /// The raw OS handle to register.
    fn source_fd(&self) -> RawFd;
}

#[cfg(unix)]
impl<T: std::os::unix::io::AsRawFd> AsSource for T {
    fn source_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(not(unix))]
impl<T> AsSource for T {
    fn source_fd(&self) -> RawFd {
        -1
    }
}

/// Level-triggered interest in (or readiness of) one source,
/// identified by the caller-chosen `key`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier echoed back by [`Poller::wait`].
    pub key: usize,
    /// Interested in / ready for reading.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Read interest only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Read and write interest.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (keeps the registration alive for a later
    /// [`Poller::modify`]).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// The key [`Poller::notify`] wake-ups use internally; never reported
/// to callers, so user keys may span the full `usize` range below it.
const NOTIFY_KEY: usize = usize::MAX;

/// A readiness poller over a set of registered sources.
pub struct Poller {
    backend: backend::Backend,
}

impl Poller {
    /// A poller with no registered sources.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: backend::Backend::new()?,
        })
    }

    /// Register `source` with the given interest. The key
    /// `usize::MAX` is reserved for [`Poller::notify`].
    pub fn add(&self, source: &impl AsSource, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for notify",
            ));
        }
        self.backend.add(source.source_fd(), interest)
    }

    /// Change a registered source's interest (its key may change too).
    pub fn modify(&self, source: &impl AsSource, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for notify",
            ));
        }
        self.backend.modify(source.source_fd(), interest)
    }

    /// Unregister a source. `key` must be the key it was last
    /// registered under (the sweep backend has no fd to look it up by).
    pub fn delete(&self, source: &impl AsSource, key: usize) -> io::Result<()> {
        self.backend.delete(source.source_fd(), key)
    }

    /// Block until at least one registered source is ready, the
    /// timeout elapses (`None` blocks indefinitely), or another
    /// thread calls [`Poller::notify`]. Ready events are appended to
    /// `events` (cleared first); returns how many. A wake-up via
    /// `notify` or timeout yields `Ok(0)`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.backend.wait(events, timeout)?;
        Ok(events.len())
    }

    /// Wake a concurrent [`Poller::wait`] from any thread. Coalesces:
    /// many notifies before the next `wait` produce one wake-up.
    pub fn notify(&self) -> io::Result<()> {
        self.backend.notify()
    }
}

/// Convert a `wait` timeout to whole milliseconds for the C APIs:
/// `None` → block forever (-1), sub-millisecond → 1 (never busy-spin
/// a 0 ms poll loop out of a 100 µs request), capped at `i32::MAX`.
#[cfg(unix)]
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod pipe {
    //! The self-pipe both Unix backends share: `notify` writes one
    //! byte, the waiting thread sees the read end readable and drains
    //! it. Nonblocking on both ends so a flood of notifies can never
    //! block a notifier or wedge the drain.

    use std::io;
    use std::os::raw::c_int;

    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0o4000;

    extern "C" {
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        pub(crate) fn close(fd: c_int) -> c_int;
    }

    pub(crate) struct SelfPipe {
        pub(crate) reader: c_int,
        writer: c_int,
    }

    impl SelfPipe {
        pub(crate) fn new() -> io::Result<SelfPipe> {
            let mut fds = [0 as c_int; 2];
            // SAFETY: `fds` is a valid 2-element buffer; pipe() fills
            // it or returns -1.
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                // SAFETY: fd is a pipe end we just created.
                if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } != 0 {
                    let err = io::Error::last_os_error();
                    // SAFETY: closing our own fds exactly once.
                    unsafe {
                        close(fds[0]);
                        close(fds[1]);
                    }
                    return Err(err);
                }
            }
            Ok(SelfPipe {
                reader: fds[0],
                writer: fds[1],
            })
        }

        /// Queue a wake-up byte. A full pipe means a wake-up is
        /// already pending — coalescing, not an error.
        pub(crate) fn notify(&self) -> io::Result<()> {
            let byte = 1u8;
            // SAFETY: writing one byte from a valid buffer to our own
            // nonblocking fd.
            let n = unsafe { write(self.writer, &byte, 1) };
            if n == 1 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            Err(err)
        }

        /// Swallow every pending wake-up byte.
        pub(crate) fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: reading into a valid buffer from our own
                // nonblocking fd.
                let n = unsafe { read(self.reader, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    return;
                }
            }
        }
    }

    impl Drop for SelfPipe {
        fn drop(&mut self) {
            // SAFETY: closing our own fds exactly once.
            unsafe {
                close(self.reader);
                close(self.writer);
            }
        }
    }
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod backend {
    //! `epoll(7)`, level-triggered.

    use super::{pipe::SelfPipe, timeout_ms, Event, NOTIFY_KEY};
    use std::io;
    use std::os::raw::c_int;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Mirrors the kernel's `struct epoll_event`, which x86-64 defines
    /// packed (the 32-bit event mask is followed immediately by the
    /// 64-bit data word).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    pub(crate) struct Backend {
        epfd: c_int,
        pipe: SelfPipe,
    }

    // SAFETY: the epoll fd and pipe fds are plain ints the kernel
    // synchronizes access to; epoll_ctl/epoll_wait/write are all
    // documented thread-safe.
    unsafe impl Send for Backend {}
    unsafe impl Sync for Backend {}

    fn interest_mask(interest: Event) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    fn ctl(epfd: c_int, op: c_int, fd: c_int, mask: u32, key: usize) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: mask,
            data: key as u64,
        };
        // SAFETY: `ev` is a valid epoll_event for the duration of the
        // call; fds are caller-supplied live descriptors.
        if unsafe { epoll_ctl(epfd, op, fd, &mut ev) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    impl Backend {
        pub(crate) fn new() -> io::Result<Backend> {
            // SAFETY: plain syscall; -1 on failure.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let pipe = SelfPipe::new().inspect_err(|_| {
                // SAFETY: closing the epoll fd we just created.
                unsafe {
                    super::pipe::close(epfd);
                }
            })?;
            ctl(epfd, EPOLL_CTL_ADD, pipe.reader, EPOLLIN, NOTIFY_KEY).inspect_err(|_| {
                // SAFETY: closing the epoll fd we just created (the
                // pipe closes itself on drop).
                unsafe {
                    super::pipe::close(epfd);
                }
            })?;
            Ok(Backend { epfd, pipe })
        }

        pub(crate) fn add(&self, fd: super::RawFd, interest: Event) -> io::Result<()> {
            ctl(
                self.epfd,
                EPOLL_CTL_ADD,
                fd,
                interest_mask(interest),
                interest.key,
            )
        }

        pub(crate) fn modify(&self, fd: super::RawFd, interest: Event) -> io::Result<()> {
            ctl(
                self.epfd,
                EPOLL_CTL_MOD,
                fd,
                interest_mask(interest),
                interest.key,
            )
        }

        pub(crate) fn delete(&self, fd: super::RawFd, _key: usize) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub(crate) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 1024];
            // SAFETY: `buf` is a valid array of `maxevents` entries the
            // kernel fills; `n` bounds how many were written.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    buf.as_mut_ptr(),
                    buf.len() as c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // signal: report an empty wake-up
                }
                return Err(err);
            }
            for ev in &buf[..n as usize] {
                let (mask, data) = (ev.events, ev.data);
                if data as usize == NOTIFY_KEY {
                    self.pipe.drain();
                    continue;
                }
                events.push(Event {
                    key: data as usize,
                    // Hangup/error count as both: the caller's next
                    // nonblocking read/write surfaces the real story.
                    readable: mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: mask & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }

        pub(crate) fn notify(&self) -> io::Result<()> {
            self.pipe.notify()
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: closing our own epoll fd exactly once.
            unsafe {
                super::pipe::close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
#[allow(unsafe_code)]
mod backend {
    //! `poll(2)` over the registered set — O(n) per wait, no kernel
    //! registration to keep in sync.

    use super::{pipe::SelfPipe, timeout_ms, Event, NOTIFY_KEY};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    pub(crate) struct Backend {
        registered: Mutex<HashMap<super::RawFd, Event>>,
        pipe: SelfPipe,
    }

    impl Backend {
        pub(crate) fn new() -> io::Result<Backend> {
            Ok(Backend {
                registered: Mutex::new(HashMap::new()),
                pipe: SelfPipe::new()?,
            })
        }

        pub(crate) fn add(&self, fd: super::RawFd, interest: Event) -> io::Result<()> {
            self.registered.lock().unwrap().insert(fd, interest);
            Ok(())
        }

        pub(crate) fn modify(&self, fd: super::RawFd, interest: Event) -> io::Result<()> {
            self.registered.lock().unwrap().insert(fd, interest);
            Ok(())
        }

        pub(crate) fn delete(&self, fd: super::RawFd, _key: usize) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub(crate) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut fds = vec![PollFd {
                fd: self.pipe.reader,
                events: POLLIN,
                revents: 0,
            }];
            let mut keys = vec![Event::none(NOTIFY_KEY)];
            for (&fd, &interest) in self.registered.lock().unwrap().iter() {
                let mut mask = 0;
                if interest.readable {
                    mask |= POLLIN;
                }
                if interest.writable {
                    mask |= POLLOUT;
                }
                fds.push(PollFd {
                    fd,
                    events: mask,
                    revents: 0,
                });
                keys.push(interest);
            }
            // SAFETY: `fds` is a valid array for the duration of the
            // call; the kernel only writes `revents`.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (slot, interest) in fds.iter().zip(&keys) {
                if slot.revents == 0 {
                    continue;
                }
                if interest.key == NOTIFY_KEY {
                    self.pipe.drain();
                    continue;
                }
                events.push(Event {
                    key: interest.key,
                    readable: slot.revents & POLLOUT == 0 || slot.revents & POLLIN != 0,
                    writable: slot.revents & POLLOUT != 0,
                });
            }
            Ok(())
        }

        pub(crate) fn notify(&self) -> io::Result<()> {
            self.pipe.notify()
        }
    }
}

#[cfg(not(unix))]
mod backend {
    //! The timed sweep: no OS readiness facility, so every registered
    //! source is reported ready (for its full interest) after a short
    //! bounded sleep. Correct against nonblocking sources — spurious
    //! readiness costs a `WouldBlock`, never a wedge.

    use super::{Event, NOTIFY_KEY};
    use std::collections::HashMap;
    use std::io;
    use std::sync::{Condvar, Mutex};
    use std::time::Duration;

    /// Longest a sweep sleeps between spurious-ready rounds.
    const SWEEP: Duration = Duration::from_millis(5);

    pub(crate) struct Backend {
        registered: Mutex<HashMap<usize, Event>>,
        notified: Mutex<bool>,
        wake: Condvar,
    }

    impl Backend {
        pub(crate) fn new() -> io::Result<Backend> {
            Ok(Backend {
                registered: Mutex::new(HashMap::new()),
                notified: Mutex::new(false),
                wake: Condvar::new(),
            })
        }

        pub(crate) fn add(&self, _fd: super::RawFd, interest: Event) -> io::Result<()> {
            self.registered
                .lock()
                .unwrap()
                .insert(interest.key, interest);
            Ok(())
        }

        pub(crate) fn modify(&self, _fd: super::RawFd, interest: Event) -> io::Result<()> {
            self.registered
                .lock()
                .unwrap()
                .insert(interest.key, interest);
            Ok(())
        }

        pub(crate) fn delete(&self, _fd: super::RawFd, key: usize) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&key);
            Ok(())
        }

        pub(crate) fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let nap = timeout.map_or(SWEEP, |t| t.min(SWEEP));
            let mut notified = self.notified.lock().unwrap();
            if !*notified {
                let (guard, _) = self.wake.wait_timeout(notified, nap).unwrap();
                notified = guard;
            }
            *notified = false;
            drop(notified);
            for (&key, &interest) in self.registered.lock().unwrap().iter() {
                if key == NOTIFY_KEY || (!interest.readable && !interest.writable) {
                    continue;
                }
                events.push(interest);
            }
            Ok(())
        }

        pub(crate) fn notify(&self) -> io::Result<()> {
            let mut notified = self.notified.lock().unwrap();
            *notified = true;
            self.wake.notify_all();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(unix)]
    #[test]
    fn readiness_tracks_interest_on_a_loopback_pair() {
        use std::io::{Read, Write};
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();

        // Nothing to read yet: the wait times out empty.
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        #[cfg(any(target_os = "linux", all(unix, not(target_os = "linux"))))]
        assert_eq!(n, 0);

        // Peer bytes make the source readable, and level-triggered
        // readiness persists until they are consumed.
        (&client).write_all(b"ping").unwrap();
        for _ in 0..2 {
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(n >= 1);
            assert!(events.iter().any(|e| e.key == 7 && e.readable));
        }
        let mut buf = [0u8; 8];
        let _ = (&server).read(&mut buf).unwrap();

        // Write interest on an idle socket reports writable.
        poller.modify(&server, Event::all(7)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.key == 7 && e.writable));

        poller.delete(&server, 7).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        #[cfg(any(target_os = "linux", all(unix, not(target_os = "linux"))))]
        assert_eq!(n, 0);
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        use std::sync::Arc;

        let poller = Arc::new(Poller::new().unwrap());
        let waker = Arc::clone(&poller);
        let start = std::time::Instant::now();
        let waiter = std::thread::spawn(move || {
            let mut events = Vec::new();
            // Blocks until notify; the generous timeout only bounds a
            // failing test.
            poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(50));
        waker.notify().unwrap();
        let n = waiter.join().unwrap();
        assert_eq!(n, 0); // notify is a wake-up, not an event
        assert!(start.elapsed() < Duration::from_secs(30));
        // Coalescing: a second notify with no waiter must not error.
        waker.notify().unwrap();
        waker.notify().unwrap();
    }
}
