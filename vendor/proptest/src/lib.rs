//! Workspace-local stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and string-pattern strategies, [`collection::vec`],
//! `Just`, `prop_oneof!`, the `proptest!` macro with optional
//! `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs and seed;
//!   minimization is up to the reader.
//! * **String "regex" strategies** only honor the `.{lo,hi}` shape
//!   (arbitrary chars with length in `[lo, hi]`), which is the only
//!   pattern used here; other patterns fall back to short arbitrary
//!   strings.
//! * Default case count is 64 (real proptest: 256) to keep `cargo
//!   test` fast; override per-block with `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-case RNG handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// RNG for `(test identifier, case index)` — stable across runs.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        ))
    }
}

/// A test-case failure raised by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy: always yields a clone of the value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// `&str` "regex" strategy. Only `.{lo,hi}` is honored (arbitrary
/// chars, length in `[lo, hi]`); anything else yields short arbitrary
/// strings.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
        let len = rng.0.gen_range(lo..=hi);
        (0..len)
            .map(|_| {
                // Mostly printable ASCII, some whitespace/unicode to
                // stress parsers.
                match rng.0.gen_range(0u32..20) {
                    0 => '\n',
                    1 => '\t',
                    2 => 'µ',
                    3 => '€',
                    _ => char::from(rng.0.gen_range(0x20u8..0x7f)),
                }
            })
            .collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategy produced by [`prop_oneof!`]: uniform choice among boxed
/// alternatives.
pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.0.gen_range(0..self.0.len());
        self.0[k].generate(rng)
    }
}

/// Uniformly choose among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fail the property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fail the property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Define property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, ys in collection::vec(0u64..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    $config,
                    &($($strategy,)+),
                    |__proptest_input| {
                        let ($($pat,)+) = __proptest_input;
                        (|| -> $crate::TestCaseResult {
                            { $body }
                            Ok(())
                        })()
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

/// Drive one property: generate `config.cases` inputs and run the body
/// on each, panicking (with the offending input) on the first failure.
/// Called by the `proptest!` macro; not part of the public proptest
/// API surface.
pub fn run_property<S, F>(test_id: &str, config: ProptestConfig, strategy: &S, body: F)
where
    S: Strategy,
    S::Value: core::fmt::Debug + Clone,
    F: Fn(S::Value) -> TestCaseResult,
{
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::for_case(test_id, case);
        let input = strategy.generate(&mut rng);
        if let Err(TestCaseError(msg)) = body(input.clone()) {
            panic!(
                "proptest failure in {test_id}, case {case}/{}:\n  {msg}\n  input: {input:?}\n  \
                 (no shrinking in the workspace proptest stand-in)",
                config.cases
            );
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0.5f64..=1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=1.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1.0f64), (1u32..10).prop_map(|c| c as f64)]) {
            prop_assert!((1.0..10.0).contains(&x));
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..6).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0usize..n, n..=n))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,40}") {
            prop_assert!(s.chars().count() <= 40);
        }

        #[test]
        fn early_ok_return_works(x in 0u32..4) {
            if x > 1 {
                return Ok(());
            }
            prop_assert!(x <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(0u64..100, 3..8);
        let a = s.generate(&mut crate::TestRng::for_case("t", 5));
        let b = s.generate(&mut crate::TestRng::for_case("t", 5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest failure")]
    fn failures_panic_with_input() {
        crate::run_property(
            "demo",
            ProptestConfig::with_cases(4),
            &(0u32..10,),
            |(x,)| {
                (|| -> TestCaseResult {
                    prop_assert!(x > 100, "x was {x}");
                    Ok(())
                })()
            },
        );
    }
}
