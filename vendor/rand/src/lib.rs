//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *subset* of the `rand 0.8` API it actually uses: [`Rng`] with
//! `gen_range` / `gen_bool` / `gen`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`choose` / `shuffle`).
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, fast, fully deterministic generator. Its stream differs
//! from upstream `rand`'s ChaCha12-based `StdRng`, which is fine for this
//! workspace: every consumer only requires *reproducibility for a fixed
//! seed*, never a specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can sample themselves uniformly from an `Rng`.
///
/// Stands in for `rand`'s `Standard` distribution: `rng.gen::<T>()`.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by Lemire-style rejection (modulo
/// bias is negligible at 64 bits but rejection keeps it exact).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_standard(rng) as f32;
        self.start + u * (self.end - self.start)
    }
}

/// User-facing sampling methods; blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }

    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type for [`SeedableRng::from_seed`].
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` (the only entry point acmr uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12);
    /// see the crate docs for why that is acceptable here.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step (Blackman & Vigna, public domain).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro forbids the all-zero state
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Sequence-related sampling, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&v));
        }
        for _ in 0..1000 {
            let f = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1800..3200).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose_are_seeded() {
        let mut v1: Vec<u32> = (0..20).collect();
        let mut v2 = v1.clone();
        v1.shuffle(&mut StdRng::seed_from_u64(3));
        v2.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v1.choose(&mut StdRng::seed_from_u64(1)).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut StdRng::seed_from_u64(1)).is_none());
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
