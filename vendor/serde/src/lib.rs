//! Workspace-local stand-in for `serde`.
//!
//! No network access means no crates.io serde, so the workspace vendors
//! a compatible-in-spirit subset: [`Serialize`] / [`Deserialize`] traits
//! over an explicit [`Value`] tree, and a `#[derive(Serialize,
//! Deserialize)]` proc macro (in `serde_derive`) covering the shapes
//! this workspace uses — named structs, tuple/newtype structs, and
//! enums with unit, tuple, or struct variants (externally tagged, like
//! real serde's default).
//!
//! `serde_json` (also vendored) renders a [`Value`] to JSON text and
//! parses it back, so `#[derive]`d types round-trip through JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type maps through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (covers every integer this workspace serializes).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// IEEE double.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Key-ordered map (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected vs what was found.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error noting a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    _ => return Err(DeError::expected(stringify!($t), v)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, i8, i16, i32, i64, usize, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if let Ok(i) = i64::try_from(*self) {
            Value::Int(i)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => u64::try_from(*i).map_err(|_| DeError(format!("{i} is negative"))),
            Value::UInt(u) => Ok(*u),
            _ => Err(DeError::expected("u64", v)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(DeError::expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(DeError::expected("2-tuple", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()),
            Ok(vec![1, 2])
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::Int(3)), Ok(Some(3)));
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(true)).is_err());
    }

    #[test]
    fn map_lookup() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
        assert_eq!(Value::Null.get("a"), None);
    }
}
