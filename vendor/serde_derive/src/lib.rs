//! `#[derive(Serialize, Deserialize)]` for the workspace-local serde
//! stand-in.
//!
//! The build has no network access, hence no `syn`/`quote`; the item
//! definition is parsed directly from the [`proc_macro::TokenStream`].
//! Supported shapes (everything this workspace derives on):
//!
//! * named-field structs → `Value::Map`
//! * newtype structs → the inner value, transparently
//! * tuple structs (≥ 2 fields) → `Value::Seq`
//! * enums: unit variants → `Value::Str(name)`; tuple/struct variants →
//!   externally tagged `Value::Map([(name, payload)])`
//!
//! Generics and `#[serde(...)]` attributes are **not** supported and
//! produce a compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    /// `struct Name { fields }`
    Struct { name: String, fields: Vec<String> },
    /// `struct Name(T1, …, Tn);` — `arity` ≥ 1
    Tuple { name: String, arity: usize },
    /// `enum Name { variants }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility starting
/// at `i`; returns the index of the first substantive token.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            // An attribute: `#` then a bracket group.
            i += 2;
            continue;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
                continue;
            }
        }
        return i;
    }
}

/// Split a field-list token stream on top-level commas, tracking angle
/// bracket depth so `Map<K, V>` does not split. Groups are atomic
/// tokens, so parens/brackets need no tracking.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-field group (`{ a: T, b: U }`).
fn named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(group_tokens)
        .into_iter()
        .filter_map(|field| {
            let i = skip_attrs_and_vis(&field, 0);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        return Err(format!(
            "serde stand-in derive does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Struct {
                    name,
                    fields: named_fields(&body),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Tuple {
                    name,
                    arity: split_top_level_commas(&body).len(),
                })
            }
            _ => Err(format!("unsupported struct shape for `{name}`")),
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                return Err(format!("expected enum body for `{name}`"));
            };
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs_and_vis(&body, j);
                let Some(TokenTree::Ident(id)) = body.get(j) else {
                    break;
                };
                let vname = id.to_string();
                j += 1;
                let shape = match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        j += 1;
                        VariantShape::Struct(named_fields(&inner))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        j += 1;
                        VariantShape::Tuple(split_top_level_commas(&inner).len())
                    }
                    _ => VariantShape::Unit,
                };
                // Skip an optional `= discriminant` and the trailing comma.
                while j < body.len() && !is_punct(&body[j], ',') {
                    j += 1;
                }
                j += 1;
                variants.push(Variant { name: vname, shape });
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match &item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Value::Map(vec![{}])
                    }}
                }}",
                entries.join(", ")
            )
        }
        Item::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::Value {{
                    ::serde::Serialize::to_value(&self.0)
                }}
            }}"
        ),
        Item::Tuple { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Value::Seq(vec![{}])
                    }}
                }}",
                entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {
                            format!("Self::{vn} => ::serde::Value::Str({vn:?}.to_string()),")
                        }
                        VariantShape::Tuple(1) => format!(
                            "Self::{vn}(f0) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "Self::{vn}({}) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vn} {{ {binds} }} => ::serde::Value::Map(vec![({vn:?}\
                                 .to_string(), ::serde::Value::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {} }}
                    }}
                }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match &item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(
                            v.get({f:?}).unwrap_or(&::serde::Value::Null))
                            .map_err(|e| ::serde::DeError(
                                format!(\"field `{f}` of {name}: {{}}\", e.0)))?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{
                        match v {{
                            ::serde::Value::Map(_) => Ok({name} {{ {} }}),
                            other => Err(::serde::DeError::expected(
                                \"map for struct {name}\", other)),
                        }}
                    }}
                }}",
                inits.join(", ")
            )
        }
        Item::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{
                    Ok({name}(::serde::Deserialize::from_value(v)?))
                }}
            }}"
        ),
        Item::Tuple { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{
                        match v {{
                            ::serde::Value::Seq(items) if items.len() == {arity} =>
                                Ok({name}({})),
                            other => Err(::serde::DeError::expected(
                                \"{arity}-element sequence for {name}\", other)),
                        }}
                    }}
                }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("{:?} => Ok(Self::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vn:?} => Ok(Self::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => match inner {{
                                    ::serde::Value::Seq(items) if items.len() == {n} =>
                                        Ok(Self::{vn}({})),
                                    other => Err(::serde::DeError::expected(
                                        \"{n}-element payload for {name}::{vn}\", other)),
                                }},",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(
                                            inner.get({f:?}).unwrap_or(&::serde::Value::Null))
                                            .map_err(|e| ::serde::DeError(format!(
                                                \"field `{f}` of {name}::{vn}: {{}}\", e.0)))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => Ok(Self::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{
                        match v {{
                            ::serde::Value::Str(s) => match s.as_str() {{
                                {}
                                other => Err(::serde::DeError(format!(
                                    \"unknown variant `{{other}}` of {name}\"))),
                            }},
                            ::serde::Value::Map(entries) if entries.len() == 1 => {{
                                let (tag, inner) = &entries[0];
                                let _ = inner; // unused when every variant is a unit
                                match tag.as_str() {{
                                    {}
                                    other => Err(::serde::DeError(format!(
                                        \"unknown variant `{{other}}` of {name}\"))),
                                }}
                            }}
                            other => Err(::serde::DeError::expected(
                                \"variant of {name}\", other)),
                        }}
                    }}
                }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
