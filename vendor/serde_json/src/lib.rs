//! Workspace-local stand-in for `serde_json`: renders the vendored
//! [`serde::Value`] tree to JSON text and parses JSON text back.
//!
//! Supports exactly the JSON subset the data model produces: `null`,
//! booleans, finite numbers, strings (with full escape handling),
//! arrays, and objects. Non-finite floats are rejected at
//! serialization time, matching real `serde_json`'s default behavior
//! of refusing NaN/infinity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization --------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {f}")));
            }
            // Shortest round-trippable repr; force a decimal point so the
            // value parses back as a float, not an integer.
            let s = format!("{f}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|n| n + 1));
                write_value(item, out, indent.map(|n| n + 1))?;
            }
            if !items.is_empty() {
                newline_indent(out, indent);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|n| n + 1));
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent.map(|n| n + 1))?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n {
            out.push_str("  ");
        }
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None)?;
    Ok(out)
}

/// Serialize a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(0))?;
    Ok(out)
}

// ---- parsing --------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error(format!("at byte {}: {}", self.pos, msg.into()))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn consume_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.consume_lit("null", Value::Null),
            Some(b't') => self.consume_lit("true", Value::Bool(true)),
            Some(b'f') => self.consume_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected byte {:?}", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Four hex digits starting at `at`, as a code unit.
    fn read_hex4(&self, at: usize) -> Result<u32> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.read_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow (RFC 8259 pair encoding).
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(br"\u".as_slice())
                                {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                let low = self.read_hex4(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                self.pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(format!("bad float {text:?}: {e}")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(format!("bad number {text:?}: {e}")))
        }
    }
}

/// Parse a JSON document into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(T::from_value(&v)?)
}

/// Parse a JSON document into a raw [`Value`] tree.
pub fn value_from_str(text: &str) -> Result<Value> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\\n\""] {
            let v = value_from_str(text).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out, None).unwrap();
            assert_eq!(out, text);
        }
    }

    #[test]
    fn structures_round_trip() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null},"d":[]}"#;
        let v = value_from_str(text).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, None).unwrap();
        assert_eq!(out, text);
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        let v = Value::Float(2.0);
        let mut out = String::new();
        write_value(&v, &mut out, None).unwrap();
        assert_eq!(out, "2.0");
        assert_eq!(value_from_str(&out).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        // BMP escape, raw multi-byte char, and an RFC 8259
        // surrogate-pair escape of U+1F600.
        assert_eq!(
            value_from_str(r#""\u00e9""#).unwrap(),
            Value::Str("\u{e9}".into())
        );
        assert_eq!(
            value_from_str("\"\u{1F600}\"").unwrap(),
            Value::Str("\u{1F600}".into())
        );
        assert_eq!(
            value_from_str(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
        assert!(value_from_str(r#""\ud83d""#).is_err()); // unpaired high
        assert!(value_from_str(r#""\ud83dxx""#).is_err()); // no \u follows
        assert!(value_from_str(r#""\ud83dA""#).is_err()); // bad low
        assert!(value_from_str(r#""\ude00""#).is_err()); // lone low
    }

    #[test]
    fn rejects_garbage() {
        assert!(value_from_str("nope").is_err());
        assert!(value_from_str("{\"a\":}").is_err());
        assert!(value_from_str("[1,]").is_err());
        assert!(value_from_str("1 2").is_err());
        assert!(value_from_str("\"unterminated").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = value_from_str(r#"{"a":[1,2],"b":"x"}"#).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, Some(0)).unwrap();
        assert!(out.contains('\n'));
        assert_eq!(value_from_str(&out).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert!(from_str::<Vec<u32>>("[1,-2]").is_err());
    }
}
